package upa

import (
	"fmt"
	"math"
)

// Composition selects how the session's budget ledger accounts a sequence
// of ε-releases.
type Composition int

// Composition modes.
const (
	// CompositionLinear is basic sequential composition: k releases of ε
	// each consume exactly k·ε (pure ε-DP, the default).
	CompositionLinear Composition = iota + 1
	// CompositionAdvanced is the advanced composition theorem (Dwork &
	// Roth, Thm 3.20): k releases of ε each satisfy
	// (ε√(2k·ln(1/δ)) + k·ε·(e^ε − 1), δ)-DP, which grows with √k instead
	// of k — so a fixed budget admits substantially more small-ε releases,
	// at the price of a δ failure probability.
	CompositionAdvanced
)

// WithAdvancedComposition switches the session's ledger to advanced
// composition with the given δ (must be in (0, 1)); combine with
// WithTotalBudget to cap the composed ε.
func WithAdvancedComposition(delta float64) Option {
	return func(c *sessionConfig) {
		c.composition = CompositionAdvanced
		c.delta = delta
	}
}

// composedEpsilon returns the ε consumed by k releases of eps0 each under
// the session's composition mode.
func composedEpsilon(mode Composition, eps0 float64, k int, delta float64) float64 {
	if k <= 0 {
		return 0
	}
	switch mode {
	case CompositionAdvanced:
		kf := float64(k)
		return eps0*math.Sqrt(2*kf*math.Log(1/delta)) + kf*eps0*(math.Expm1(eps0))
	default:
		return float64(k) * eps0
	}
}

// validateComposition checks the mode/δ pairing at session construction.
func validateComposition(mode Composition, delta float64) error {
	switch mode {
	case 0, CompositionLinear:
		return nil
	case CompositionAdvanced:
		if delta <= 0 || delta >= 1 {
			return fmt.Errorf("upa: advanced composition needs delta in (0,1), got %v", delta)
		}
		return nil
	default:
		return fmt.Errorf("upa: unknown composition mode %d", mode)
	}
}

// Delta reports the session's composition δ (0 under linear composition).
func (s *Session) Delta() float64 { return s.delta }

// Composition reports the session's ledger mode.
func (s *Session) Composition() Composition {
	if s.composition == 0 {
		return CompositionLinear
	}
	return s.composition
}
