// Package lockdiscipline is golden testdata: //upa:guardedby fields
// accessed with and without their mutex, directly and through *Locked
// helpers.
package lockdiscipline

import "sync"

type store struct {
	mu sync.Mutex
	// closed and n may only move under mu.
	closed bool //upa:guardedby(mu)
	n      int  //upa:guardedby(mu)
}

// setLocked is a caller-must-hold helper: it exports RequiresLocks=[mu]
// instead of acquiring.
func (s *store) setLocked(v bool) {
	s.closed = v
}

// CloseOK holds mu, so the *Locked-summary path is accepted.
func (s *store) CloseOK() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setLocked(true)
	s.n++
}

// CloseBad writes the guarded field through the helper without the lock —
// the unguarded helper-call write the analyzer exists for.
func (s *store) CloseBad() {
	s.setLocked(true) // want `requires holding mu`
}

func (s *store) ReadBad() bool {
	return s.closed // want `guarded by mu`
}

func (s *store) ReadOK() bool {
	s.mu.Lock()
	v := s.closed
	s.mu.Unlock()
	return v
}

// branchOK exercises the early-unlock-and-return shape: statements after
// the branch still see the lock held.
func (s *store) branchOK() {
	s.mu.Lock()
	if s.n > 3 {
		s.mu.Unlock()
		return
	}
	s.n++
	s.mu.Unlock()
}

// goroutineBad: a goroutine runs concurrently, the caller's lock does not
// cover it.
func (s *store) goroutineBad() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.n++ // want `guarded by mu`
	}()
}

func (s *store) suppressedRead() bool {
	//upa:allow(lockdiscipline) single-writer field after construction, reviewed
	return s.closed
}

type broken struct {
	closed bool //upa:guardedby(lk) // want `names no sync.Mutex`
}
