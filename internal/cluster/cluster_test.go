package cluster

import (
	"testing"
	"time"

	"upa/internal/mapreduce"
)

func delta(mapped, reduces, shuffles, shuffled, attempts int64) mapreduce.MetricsSnapshot {
	return mapreduce.MetricsSnapshot{
		RecordsMapped:   mapped,
		ReduceOps:       reduces,
		ShuffleRounds:   shuffles,
		RecordsShuffled: shuffled,
		TaskAttempts:    attempts,
	}
}

func TestValidate(t *testing.T) {
	good := PaperTestbed()
	if err := good.Validate(); err != nil {
		t.Fatalf("paper testbed invalid: %v", err)
	}
	bad := []Model{
		{Nodes: 0, CoresPerNode: 1, BisectionGbps: 1},
		{Nodes: 1, CoresPerNode: 1, BisectionGbps: 0},
		{Nodes: 1, CoresPerNode: 1, BisectionGbps: 1, RecordCPU: -1},
		{Nodes: 1, CoresPerNode: 1, BisectionGbps: 1, RecordBytes: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %d accepted: %+v", i, m)
		}
	}
}

func TestEstimateComponents(t *testing.T) {
	m := Model{
		Nodes: 2, CoresPerNode: 5, RecordCPU: 100 * time.Nanosecond,
		RecordBytes: 125, BisectionGbps: 1, // 125 bytes = 1000 bits
		ShuffleLatency: time.Millisecond, TaskOverhead: time.Millisecond,
	}
	c, err := m.Estimate(delta(5000, 5000, 3, 1_000_000, 20))
	if err != nil {
		t.Fatal(err)
	}
	// CPU: 10000 ops * 100ns / 10 cores = 100µs.
	if c.CPU != 100*time.Microsecond {
		t.Errorf("CPU = %v, want 100µs", c.CPU)
	}
	// Network: 1e6 records * 1000 bits / 1e9 bps = 1s.
	if c.Network != time.Second {
		t.Errorf("Network = %v, want 1s", c.Network)
	}
	if c.Barriers != 3*time.Millisecond {
		t.Errorf("Barriers = %v, want 3ms", c.Barriers)
	}
	// Scheduler: ceil(20/2) = 10 waves.
	if c.Scheduler != 10*time.Millisecond {
		t.Errorf("Scheduler = %v, want 10ms", c.Scheduler)
	}
	if c.Total() != c.CPU+c.Network+c.Barriers+c.Scheduler {
		t.Error("Total does not add components")
	}
}

func TestEstimateChargesRetries(t *testing.T) {
	m := Model{
		Nodes: 2, CoresPerNode: 5, RecordCPU: 100 * time.Nanosecond,
		RecordBytes: 125, BisectionGbps: 1,
		ShuffleLatency: time.Millisecond, TaskOverhead: time.Millisecond,
	}
	d := delta(0, 0, 0, 0, 0)
	d.TaskRetries = 3
	d.ShuffleRetries = 2
	d.BackoffNanos = int64(4 * time.Millisecond)
	c, err := m.Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	// 5 retries × 1ms rescheduling + 4ms waited in backoff.
	if c.Retry != 9*time.Millisecond {
		t.Errorf("Retry = %v, want 9ms", c.Retry)
	}
	if c.Total() != c.Retry+c.Startup {
		t.Error("Total does not include the retry surcharge")
	}
}

func TestEstimateZeroDelta(t *testing.T) {
	m := PaperTestbed()
	c, err := m.Estimate(mapreduce.MetricsSnapshot{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Total() != m.JobStartup {
		t.Errorf("zero activity priced at %v, want the bare job startup %v", c.Total(), m.JobStartup)
	}
}

func TestOverheadRatio(t *testing.T) {
	m := PaperTestbed()
	baseline := delta(1_000_000, 1_000_000, 0, 0, 100)
	treatment := delta(2_000_000, 2_000_000, 1, 1_000_000, 200)
	ratio, err := m.Overhead(baseline, treatment)
	if err != nil {
		t.Fatal(err)
	}
	if ratio <= 1 {
		t.Fatalf("strictly more work priced at ratio %v", ratio)
	}
	// With job startup amortizing the fixed costs, the ratio sits between
	// 1 and the pure work ratio; a startup-free model exposes the full
	// work ratio.
	noStartup := m
	noStartup.JobStartup = 0
	raw, err := noStartup.Overhead(baseline, treatment)
	if err != nil {
		t.Fatal(err)
	}
	if raw < ratio || raw < 2 {
		t.Fatalf("startup-free ratio = %v, want >= max(2, %v)", raw, ratio)
	}
	if _, err := noStartup.Overhead(mapreduce.MetricsSnapshot{}, treatment); err == nil {
		t.Fatal("zero-cost baseline accepted")
	}
}

func TestMoreNodesCheaperCPU(t *testing.T) {
	small := PaperTestbed()
	big := small
	big.Nodes = 50
	d := delta(10_000_000, 10_000_000, 0, 0, 0)
	cs, err := small.Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := big.Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	if cb.CPU >= cs.CPU {
		t.Fatalf("10x nodes did not shrink CPU time: %v vs %v", cb.CPU, cs.CPU)
	}
}
