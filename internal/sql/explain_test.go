package sql

import "testing"

// The golden tests pin Explain's exact output on three representative
// plans, so any change to rewrite behaviour shows up as a reviewable diff.

func filterOverJoinPlan() Plan {
	joined := JoinOn(ordersScan(), "custkey", customersScan(), "custkey")
	return GroupBy(
		Where(joined, And(
			Gt(Col("price"), Lit(Float(60))),
			Eq(Col("nation"), Lit(Str("DE"))),
		)),
		nil,
		AggSpec{Name: "n", Func: AggCount},
	)
}

func projectionHeavyPlan() Plan {
	return GroupBy(ordersScan(), []string{"status"},
		AggSpec{Name: "n", Func: AggCount},
		AggSpec{Name: "total", Func: AggSum, Arg: Col("price")},
	)
}

func limitPlanUnderTest() Plan {
	return Limit(Project(
		Where(ordersScan(), Gt(Col("price"), Lit(Float(0)))),
		NamedExpr{Name: "okey", Expr: Col("orderkey")},
	), 2)
}

func TestExplainGoldenFilterOverJoin(t *testing.T) {
	assertExplain(t, filterOverJoinPlan(), `raw plan:
  aggregate group=[] aggs=[n=count()]
    filter ((price > 60) AND (nation = "DE"))
      join custkey=custkey (right side is the hash build side)
        scan orders [orderkey, custkey, price, status] (5 rows)
        scan customers [custkey, nation] (4 rows)
optimized plan:
  aggregate group=[] aggs=[n=count()]
    join custkey=custkey (right side is the hash build side)
      filter (price > 60)
        scan orders [custkey, price] (5 rows)
      filter (nation = "DE")
        scan customers [custkey, nation] (4 rows)
physical plan:
  aggregate group=[] aggs=[n=count()] [row]
    join custkey=custkey (right side is the hash build side) [row]
      filter (price > 60) [columnar]
        scan orders [custkey, price] (5 rows) [columnar]
      filter (nation = "DE") [columnar]
        scan customers [custkey, nation] (4 rows) [columnar]
rewrites:
  1. predicate-pushdown-join-left: moved (price > 60) below join to the custkey side
  2. predicate-pushdown-join-right: moved (nation = "DE") below join to the custkey side
  3. projection-pruning: narrowed scan orders from 4 to 2 columns [custkey, price]
`)
}

func TestExplainGoldenProjectionHeavy(t *testing.T) {
	assertExplain(t, projectionHeavyPlan(), `raw plan:
  aggregate group=[status] aggs=[n=count(), total=sum(price)]
    scan orders [orderkey, custkey, price, status] (5 rows)
optimized plan:
  aggregate group=[status] aggs=[n=count(), total=sum(price)]
    scan orders [price, status] (5 rows)
physical plan:
  aggregate group=[status] aggs=[n=count(), total=sum(price)] [columnar]
    scan orders [price, status] (5 rows) [columnar]
rewrites:
  1. projection-pruning: narrowed scan orders from 4 to 2 columns [price, status]
`)
}

func TestExplainGoldenLimit(t *testing.T) {
	assertExplain(t, limitPlanUnderTest(), `raw plan:
  limit 2
    project [okey=orderkey]
      filter (price > 0)
        scan orders [orderkey, custkey, price, status] (5 rows)
optimized plan:
  project [okey=orderkey]
    limit 2
      filter (price > 0)
        scan orders [orderkey, price] (5 rows)
physical plan:
  project [okey=orderkey] [row]
    limit 2 [row]
      filter (price > 0) [columnar]
        scan orders [orderkey, price] (5 rows) [columnar]
rewrites:
  1. limit-pushdown-project: took the first 2 rows below the project
  2. projection-pruning: narrowed scan orders from 4 to 2 columns [orderkey, price]
`)
}

func assertExplain(t *testing.T, plan Plan, want string) {
	t.Helper()
	got := Explain(plan)
	if got != want {
		t.Fatalf("Explain output changed.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
