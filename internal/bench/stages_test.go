package bench

import (
	"strings"
	"testing"

	"upa/internal/cluster"
	"upa/internal/core"
)

func TestStageBreakdownShape(t *testing.T) {
	stages, plans, err := StageBreakdown(smallConfig(), cluster.PaperTestbed())
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 9 {
		t.Fatalf("%d plan rows, want 9", len(plans))
	}
	byQuery := map[string][]StageRow{}
	for _, s := range stages {
		byQuery[s.Query] = append(byQuery[s.Query], s)
	}
	for _, p := range plans {
		qs := byQuery[p.Query]
		if len(qs) == 0 {
			t.Fatalf("%s: no stage rows", p.Query)
		}
		seen := map[string]bool{}
		critical := 0
		for _, s := range qs {
			seen[s.Stage] = true
			if s.Critical {
				critical++
			}
		}
		// Every release runs the paper's backbone stages.
		for _, want := range []string{
			core.StagePartitionSample, core.StageBulkReduce, core.StageMapSamples,
			core.StagePrefixSuffix, core.StageNeighbourJoin, core.StageFit,
			core.StageEnforce, core.StagePerturb,
		} {
			if !seen[want] {
				t.Errorf("%s: stage %q missing from breakdown", p.Query, want)
			}
		}
		if critical != len(p.CriticalPath) {
			t.Errorf("%s: %d critical-marked stages vs path of %d", p.Query, critical, len(p.CriticalPath))
		}
		// The pipelined plan can never cost more than the sequential one, and
		// with the off-path map/delta stages it must be strictly cheaper.
		if p.SimPipelined >= p.SimSequential {
			t.Errorf("%s: pipelined %v not below sequential %v", p.Query, p.SimPipelined, p.SimSequential)
		}
		if p.Speedup <= 1 {
			t.Errorf("%s: DAG speedup %v, want > 1", p.Query, p.Speedup)
		}
		// partition-sample repartitions the whole input, so it carries the
		// release's shuffle volume.
		for _, s := range qs {
			if s.Stage == core.StagePartitionSample && s.ShuffledRecords <= 0 {
				t.Errorf("%s: partition-sample shuffled %d records", p.Query, s.ShuffledRecords)
			}
			if s.Stage == core.StageNeighbourJoin && s.CacheHits <= 0 {
				t.Errorf("%s: neighbour-join reported %d cache hits", p.Query, s.CacheHits)
			}
		}
	}
	out := RenderStageBreakdown(stages, plans)
	for _, want := range []string{"Stage", "critical path", core.StageNeighbourDeltas, "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered breakdown missing %q", want)
		}
	}
}
