package core

import (
	"math"
	"testing"
	"testing/quick"

	"upa/internal/mapreduce"
	"upa/internal/stats"
)

// countQuery counts its records: the simplest Count-type query (TPCH1's
// shape), whose removal neighbours are exactly count-1 and addition
// neighbours count+1.
func countQuery() Query[float64] {
	return Query[float64]{
		Name:      "count",
		StateDim:  1,
		OutputDim: 1,
		Map:       func(float64) State { return State{1} },
	}
}

// sumQuery sums its records (an Arithmetic-type query, TPCH6's shape).
func sumQuery() Query[float64] {
	return Query[float64]{
		Name:      "sum",
		StateDim:  1,
		OutputDim: 1,
		Map:       func(x float64) State { return State{x} },
	}
}

// meanQuery exercises a non-identity Finalize over a two-dimensional state.
func meanQuery() Query[float64] {
	return Query[float64]{
		Name:      "mean",
		StateDim:  2,
		OutputDim: 1,
		Map:       func(x float64) State { return State{x, 1} },
		Finalize: func(s State) []float64 {
			if s[1] == 0 {
				return []float64{0}
			}
			return []float64{s[0] / s[1]}
		},
	}
}

func newTestSystem(t *testing.T, mutate func(*Config)) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.SampleSize = 50
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := NewSystem(mapreduce.NewEngine(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func seqData(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

func uniformDomain(lo, hi float64) domainSampler[float64] {
	return func(rng *stats.RNG) float64 { return lo + rng.Float64()*(hi-lo) }
}

func TestNewSystemValidation(t *testing.T) {
	eng := mapreduce.NewEngine()
	bad := []Config{
		{SampleSize: 0, Epsilon: 1, PercentileLo: 0.01, PercentileHi: 0.99},
		{SampleSize: 10, Epsilon: 0, PercentileLo: 0.01, PercentileHi: 0.99},
		{SampleSize: 10, Epsilon: 1, PercentileLo: 0, PercentileHi: 0.99},
		{SampleSize: 10, Epsilon: 1, PercentileLo: 0.5, PercentileHi: 0.5},
		{SampleSize: 10, Epsilon: 1, PercentileLo: 0.01, PercentileHi: 1},
	}
	for i, cfg := range bad {
		if _, err := NewSystem(eng, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewSystem(nil, DefaultConfig()); err == nil {
		t.Error("nil engine accepted")
	}
}

func TestRunValidation(t *testing.T) {
	sys := newTestSystem(t, nil)
	if _, err := Run(sys, Query[float64]{}, seqData(10), nil); err == nil {
		t.Error("invalid query accepted")
	}
	if _, err := Run(sys, countQuery(), seqData(1), nil); err == nil {
		t.Error("single-record input accepted")
	}
	if _, err := Run(sys, countQuery(), nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestRunCountBasics(t *testing.T) {
	sys := newTestSystem(t, nil)
	data := seqData(400)
	res, err := Run(sys, countQuery(), data, uniformDomain(0, 400))
	if err != nil {
		t.Fatal(err)
	}
	if res.VanillaOutput[0] != 400 {
		t.Errorf("VanillaOutput = %v, want 400", res.VanillaOutput)
	}
	if res.SampleSize != 50 {
		t.Errorf("SampleSize = %d, want 50", res.SampleSize)
	}
	if len(res.RemovalOutputs) != 50 || len(res.AdditionOutputs) != 50 {
		t.Fatalf("neighbour outputs = %d removals / %d additions, want 50/50",
			len(res.RemovalOutputs), len(res.AdditionOutputs))
	}
	for _, o := range res.RemovalOutputs {
		if o[0] != 399 {
			t.Fatalf("removal output = %v, want 399", o)
		}
	}
	for _, o := range res.AdditionOutputs {
		if o[0] != 401 {
			t.Fatalf("addition output = %v, want 401", o)
		}
	}
	// The greatest observed neighbour deviation is exactly 1 for a count.
	if res.EmpiricalLocalSensitivity[0] != 1 {
		t.Errorf("EmpiricalLocalSensitivity = %v, want 1", res.EmpiricalLocalSensitivity[0])
	}
	// Neighbours are {399 (x50), 401 (x50)}: MLE normal has mu=400 sigma=1,
	// so sensitivity = 2 * z(0.99) ≈ 4.653.
	if math.Abs(res.Sensitivity[0]-4.6527)/4.6527 > 0.01 {
		t.Errorf("Sensitivity = %v, want about 4.653", res.Sensitivity[0])
	}
	if res.RangeLo[0] >= res.RangeHi[0] {
		t.Errorf("range inverted: [%v, %v]", res.RangeLo[0], res.RangeHi[0])
	}
	if res.AttackSuspected || res.RemovedRecords != 0 {
		t.Errorf("fresh query flagged as attack: removed %d", res.RemovedRecords)
	}
	// f(x)=400 sits inside [lo, hi] ≈ [397.7, 402.3]: no clamping.
	if res.ClampedCoords != 0 {
		t.Errorf("ClampedCoords = %d, want 0", res.ClampedCoords)
	}
	if res.RawOutput[0] != 400 {
		t.Errorf("RawOutput = %v, want 400", res.RawOutput)
	}
	// Output is raw plus Laplace noise — at eps=0.1 it differs w.h.p.
	if res.Output[0] == res.RawOutput[0] {
		t.Log("noisy output equals raw output (possible but vanishingly unlikely)")
	}
	// The RANGE ENFORCER partitioning accounts at least one shuffle.
	if res.EngineDelta.ShuffleRounds < 1 {
		t.Errorf("no shuffle accounted: %+v", res.EngineDelta)
	}
	if sys.Enforcer().HistoryLen() != 1 {
		t.Errorf("history length = %d, want 1", sys.Enforcer().HistoryLen())
	}
}

func TestRunWithoutDomainSampler(t *testing.T) {
	sys := newTestSystem(t, nil)
	res, err := Run(sys, countQuery(), seqData(100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AdditionOutputs) != 0 {
		t.Errorf("additions sampled without a domain sampler: %d", len(res.AdditionOutputs))
	}
	if len(res.RemovalOutputs) != 50 {
		t.Errorf("removals = %d, want 50", len(res.RemovalOutputs))
	}
}

func TestRunSmallDatasetExactNeighbours(t *testing.T) {
	// With |x| < n, UPA degenerates to the exact local sensitivity over all
	// removals (§IV-A).
	sys := newTestSystem(t, func(c *Config) { c.SampleSize = 1000 })
	data := seqData(20)
	res, err := Run(sys, sumQuery(), data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleSize != 20 {
		t.Fatalf("SampleSize = %d, want 20 (=|x|)", res.SampleSize)
	}
	if len(res.RemovalOutputs) != 20 {
		t.Fatalf("removals = %d, want 20", len(res.RemovalOutputs))
	}
	// Every removal output must be sum - x_i for some unique record.
	total := 190.0
	seen := make(map[float64]bool)
	for _, o := range res.RemovalOutputs {
		removedVal := total - o[0]
		if removedVal < -1e-9 || removedVal > 19+1e-9 {
			t.Fatalf("removal output %v implies removed record %v outside data", o[0], removedVal)
		}
		key := math.Round(removedVal)
		if seen[key] {
			t.Fatalf("record %v removed twice", key)
		}
		seen[key] = true
	}
}

// TestReuseMatchesScratch is the central correctness property of Union
// Preserving Aggregation: the prefix/suffix + R(M(S')) reuse produces
// exactly the same neighbouring outputs as recomputing every neighbouring
// dataset from scratch.
func TestReuseMatchesScratch(t *testing.T) {
	f := func(raw []int16, seedRaw uint32) bool {
		if len(raw) < 4 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		data := make([]float64, len(raw))
		for i, v := range raw {
			data[i] = float64(v)
		}
		seed := uint64(seedRaw) + 1

		run := func(disableReuse bool) [][]float64 {
			cfg := DefaultConfig()
			cfg.SampleSize = 16
			cfg.Seed = seed
			cfg.DisableReuse = disableReuse
			sys, err := NewSystem(mapreduce.NewEngine(), cfg)
			if err != nil {
				return nil
			}
			res, err := Run(sys, sumQuery(), data, nil)
			if err != nil {
				return nil
			}
			return res.RemovalOutputs
		}
		a := run(false)
		b := run(true)
		if a == nil || b == nil || len(a) != len(b) {
			return false
		}
		// Fresh systems with equal seeds sample identical records, so the
		// reused and from-scratch neighbour outputs must agree
		// element-wise (up to reduce-order floating-point noise).
		for i := range a {
			if math.Abs(a[i][0]-b[i][0]) > 1e-6*math.Max(1, math.Abs(b[i][0])) {
				return false
			}
		}
		// And every output must be a genuine removal neighbour.
		var total float64
		for _, v := range data {
			total += v
		}
		for _, o := range a {
			matched := false
			for _, v := range data {
				if math.Abs(o[0]-(total-v)) < 1e-6*math.Max(1, math.Abs(total-v)) {
					matched = true
					break
				}
			}
			if !matched {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReuseIsCheaper(t *testing.T) {
	data := seqData(2000)
	runOps := func(disable bool) int64 {
		cfg := DefaultConfig()
		cfg.SampleSize = 100
		cfg.DisableReuse = disable
		eng := mapreduce.NewEngine()
		sys, err := NewSystem(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(sys, sumQuery(), data, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.EngineDelta.ReduceOps
	}
	withReuse := runOps(false)
	scratch := runOps(true)
	if scratch < 10*withReuse {
		t.Fatalf("reuse saved too little: %d ops with reuse vs %d from scratch", withReuse, scratch)
	}
}

func TestAttackDetectedOnRepeatedQuery(t *testing.T) {
	sys := newTestSystem(t, nil)
	data := seqData(300)
	first, err := Run(sys, sumQuery(), data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.AttackSuspected {
		t.Fatal("first release flagged as attack")
	}
	// The analyst reruns the same query on a neighbouring dataset (one
	// record removed) to isolate record 7.
	neighbour := append([]float64{}, data...)
	neighbour = append(neighbour[:7], neighbour[8:]...)
	second, err := Run(sys, sumQuery(), neighbour, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !second.AttackSuspected {
		t.Fatal("repeated neighbouring query not detected")
	}
	if second.RemovedRecords < 2 {
		t.Fatalf("RemovedRecords = %d, want >= 2", second.RemovedRecords)
	}
	if second.CollidedWith != "sum" {
		t.Errorf("CollidedWith = %q, want sum", second.CollidedWith)
	}
	// The released output is computed on x'' (records removed), so the
	// analyst cannot difference the two answers down to one record.
	wantFull := 0.0
	for _, v := range neighbour {
		wantFull += v
	}
	if second.RawOutput[0] == wantFull {
		t.Error("enforcer removed records but output still equals f(x)")
	}
}

func TestClampFiresAfterEnforcerRemoval(t *testing.T) {
	// When the enforcer removes records to break an attack, the released
	// value f(x'') drifts below the neighbouring-output range of f(x) (a
	// sum of strictly positive records loses two of them) and the clamp of
	// Algorithm 2 lines 17-18 must pull it back inside.
	sys := newTestSystem(t, nil)
	data := make([]float64, 300)
	for i := range data {
		data[i] = 100 + float64(i%7) // strictly positive, low variance
	}
	if _, err := Run(sys, sumQuery(), data, nil); err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, sumQuery(), data[1:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AttackSuspected || res.RemovedRecords < 2 {
		t.Fatalf("attack path not taken: %+v", res)
	}
	if res.ClampedCoords == 0 {
		t.Fatalf("removal shifted the output outside the range but nothing was clamped (raw %v, range [%v, %v])",
			res.RawOutput[0], res.RangeLo[0], res.RangeHi[0])
	}
	if res.RawOutput[0] < res.RangeLo[0] || res.RawOutput[0] > res.RangeHi[0] {
		t.Fatalf("clamped output %v escaped [%v, %v]",
			res.RawOutput[0], res.RangeLo[0], res.RangeHi[0])
	}
}

func TestNoAttackAcrossDifferentData(t *testing.T) {
	sys := newTestSystem(t, nil)
	if _, err := Run(sys, sumQuery(), seqData(300), nil); err != nil {
		t.Fatal(err)
	}
	other := make([]float64, 300)
	for i := range other {
		other[i] = float64(i) * 3.7
	}
	res, err := Run(sys, sumQuery(), other, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.AttackSuspected {
		t.Fatal("unrelated dataset flagged as attack")
	}
}

func TestNonIdentityFinalize(t *testing.T) {
	sys := newTestSystem(t, nil)
	data := seqData(101) // mean = 50
	res, err := Run(sys, meanQuery(), data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.VanillaOutput[0]-50) > 1e-9 {
		t.Errorf("mean = %v, want 50", res.VanillaOutput[0])
	}
	for _, o := range res.RemovalOutputs {
		// Removing x_i shifts the mean to (5050-x_i)/100 in [50-0.5, 50+0.505].
		if o[0] < 49.4 || o[0] > 50.6 {
			t.Fatalf("removal mean %v implausible", o[0])
		}
	}
	if len(res.Output) != 1 {
		t.Fatalf("output dim = %d, want 1", len(res.Output))
	}
}

func TestRunDeterministicAcrossSystems(t *testing.T) {
	// Fresh systems with the same seed do not share the global release
	// counter, so exact equality is not guaranteed across process history.
	// What must hold: the vanilla output and the history-free enforcement
	// path are deterministic functions of the data.
	data := seqData(256)
	a, err := Run(newTestSystem(t, nil), countQuery(), data, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(newTestSystem(t, nil), countQuery(), data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.VanillaOutput[0] != b.VanillaOutput[0] {
		t.Errorf("vanilla outputs differ: %v vs %v", a.VanillaOutput, b.VanillaOutput)
	}
	if a.RawOutput[0] != b.RawOutput[0] {
		t.Errorf("raw outputs differ: %v vs %v", a.RawOutput, b.RawOutput)
	}
	if a.Sensitivity[0] != b.Sensitivity[0] {
		t.Errorf("sensitivities differ: %v vs %v", a.Sensitivity, b.Sensitivity)
	}
}

func TestEmpiricalRangeAblation(t *testing.T) {
	// For a count query the neighbouring outputs are the three-point set
	// {c-1, c, c+1}; the empirical 1-99 range nails [c-1, c+1] while the
	// normal fit widens it (sigma-scaled percentiles).
	data := seqData(400)
	run := func(empirical bool) *Result {
		sys := newTestSystem(t, func(c *Config) { c.EmpiricalRange = empirical })
		res, err := Run(sys, countQuery(), data, uniformDomain(0, 400))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	mle := run(false)
	emp := run(true)
	if emp.RangeLo[0] != 399 || emp.RangeHi[0] != 401 {
		t.Fatalf("empirical range = [%v, %v], want [399, 401]",
			emp.RangeLo[0], emp.RangeHi[0])
	}
	if emp.Sensitivity[0] != 2 {
		t.Fatalf("empirical sensitivity = %v, want 2", emp.Sensitivity[0])
	}
	if mle.Sensitivity[0] <= emp.Sensitivity[0] {
		t.Fatalf("MLE sensitivity %v not wider than empirical %v on a non-normal census",
			mle.Sensitivity[0], emp.Sensitivity[0])
	}
}

func TestDisableClampAblation(t *testing.T) {
	sys := newTestSystem(t, func(c *Config) { c.DisableClamp = true })
	res, err := Run(sys, sumQuery(), seqData(200), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ClampedCoords != 0 {
		t.Errorf("clamping ran despite DisableClamp: %d", res.ClampedCoords)
	}
}

func TestRunVanilla(t *testing.T) {
	eng := mapreduce.NewEngine()
	out, err := RunVanilla(eng, sumQuery(), seqData(100))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 4950 {
		t.Errorf("vanilla sum = %v, want 4950", out[0])
	}
	if _, err := RunVanilla(eng, sumQuery(), nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := RunVanilla(eng, Query[float64]{}, seqData(10)); err == nil {
		t.Error("invalid query accepted")
	}
	// Finalize applies.
	mean, err := RunVanilla(eng, meanQuery(), seqData(11))
	if err != nil {
		t.Fatal(err)
	}
	if mean[0] != 5 {
		t.Errorf("vanilla mean = %v, want 5", mean[0])
	}
}

func TestPhaseTimingsTotal(t *testing.T) {
	sys := newTestSystem(t, nil)
	res, err := Run(sys, countQuery(), seqData(100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases.Total() <= 0 {
		t.Errorf("phase total = %v, want positive", res.Phases.Total())
	}
}

func TestCacheReuseCounted(t *testing.T) {
	// n=50 neighbour iterations each re-read the cached R(M(S')).
	sys := newTestSystem(t, nil)
	res, err := Run(sys, sumQuery(), seqData(500), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.EngineDelta.CacheHits < 50 {
		t.Errorf("cache hits = %d, want >= 50 (one per sampled neighbour)", res.EngineDelta.CacheHits)
	}
}

// TestSharedEngineCacheIsolation is the regression test for a cache-key
// collision: two systems sharing one engine must never alias each other's
// cached R(M(S')) — the stale entry silently corrupts every neighbouring
// output of the second system.
func TestSharedEngineCacheIsolation(t *testing.T) {
	eng := mapreduce.NewEngine()
	data := seqData(500)
	var total float64
	for _, v := range data {
		total += v
	}
	newSys := func(seed uint64) *System {
		cfg := DefaultConfig()
		cfg.SampleSize = 50
		cfg.Seed = seed
		sys, err := NewSystem(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	// Two systems, same engine, different seeds: different sample sets,
	// hence different R(M(S')) under the same release number.
	for _, seed := range []uint64{1, 2, 3} {
		res, err := Run(newSys(seed), sumQuery(), data, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range res.RemovalOutputs {
			removed := total - o[0]
			if removed < -1e-6 || removed > 499+1e-6 {
				t.Fatalf("seed %d: removal output %v implies removed record %v outside data (stale cache?)",
					seed, o[0], removed)
			}
		}
	}
}

func TestSensitivityCoversNeighbours(t *testing.T) {
	// The inferred range must cover the bulk of the sampled neighbouring
	// outputs (the 1st..99th percentile of their fitted distribution).
	sys := newTestSystem(t, func(c *Config) { c.SampleSize = 200 })
	rng := stats.NewRNG(77)
	data := make([]float64, 2000)
	for i := range data {
		data[i] = rng.NormFloat64() * 10
	}
	res, err := Run(sys, sumQuery(), data, func(r *stats.RNG) float64 { return r.NormFloat64() * 10 })
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([][]float64{}, res.RemovalOutputs...), res.AdditionOutputs...)
	col := make([]float64, len(all))
	for i, o := range all {
		col[i] = o[0]
	}
	cov := stats.CoverageFraction(col, res.RangeLo[0], res.RangeHi[0])
	if cov < 0.95 {
		t.Fatalf("inferred range covers only %.1f%% of sampled neighbours", cov*100)
	}
}
