// Package dpflow is the taint half of UPA's "automated privacy" claim,
// checked at vet time: values derived from protected data before noise —
// rows from protected scans, sampler outputs, pre-noise aggregates,
// data-dependent sensitivities — must never reach a user-visible sink
// (fmt/log formatting, error construction, HTTP responses, //upa:dpsink
// functions) without passing through a blessed noise/release function.
// DPSQL+ and the DP-library survey of Munilla Garrido et al. both show
// deployed DP systems leak through exactly this plumbing (logged
// sensitivities, raw values in error strings), not through mechanism math.
//
// Sources are declared with //upa:dpsource on function declarations (their
// results are tainted) or on struct fields (reads of that field name are
// tainted module-wide). Sanitizers are the noise primitives Perturb /
// PerturbVector plus anything annotated //upa:dpsanitize. Sinks are the
// external formatting/logging/HTTP functions, leveled-logger method names,
// //upa:dpsink functions, and — interprocedurally — any module function
// whose summary says a parameter reaches one of those sinks, so a leak
// through a helper (or a helper's helper) is reported at the call site
// that hands the tainted value over. len/cap declassify: cardinalities
// are published metadata by design.
package dpflow

import (
	"fmt"
	"go/ast"

	"upa/internal/analyzers/analysis"
)

// Analyzer is the dpflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "dpflow",
	Doc: "tracks pre-noise protected values (//upa:dpsource) interprocedurally and " +
		"reports any path into fmt/log/error/HTTP sinks that skips a blessed " +
		"noise/release function (//upa:dpsanitize)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Module == nil {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			fi := pass.Module.FuncInfoFor(pass.Pkg, fn)
			if fi == nil {
				continue
			}
			for _, hit := range pass.Module.AmbientTaint(fi) {
				pass.Reportf(hit.Pos, fmt.Sprintf(
					"pre-noise protected value flows into %s; only noised releases may leave the privacy boundary — route it through Perturb or a //upa:dpsanitize function, or justify with //upa:allow(dpflow)",
					hit.Sink))
			}
		}
	}
	return nil
}
