// Package dpop implements the paper's Spark-compatible DP operator API
// (Table I, §V): dpread partitions an input dataset into the sampled
// differing records S and the remaining records S'; dpobject carries the
// map/reduce results of S and S' through mapDP, reduceDP, mapDPKV,
// reduceByKeyDP and joinDP, each of which returns both the query result and
// the output values on the sampled neighbouring datasets.
//
// This is the low-level, operator-at-a-time face of UPA: existing MapReduce
// pipelines swap their operators one-for-one (map → MapDP, reduce →
// ReduceDP, ...) and receive neighbouring outputs alongside every
// aggregation, from which a local sensitivity value is inferred. The
// higher-level core package drives the same machinery end-to-end
// (Algorithm 1 + Algorithm 2) for whole queries.
package dpop

import (
	"errors"
	"fmt"

	"upa/internal/mapreduce"
	"upa/internal/stats"
)

// DPDataset is the result of dpread: the sampled differing records S and
// the remaining records S', both tracked through subsequent operators. The
// paper's dpobject[T] carries exactly this pair (§V).
type DPDataset[T any] struct {
	eng *mapreduce.Engine
	// samples is S, held in memory (n records); rest is S', a lazy engine
	// dataset so downstream maps parallelize and recompute from lineage.
	samples []T
	rest    *mapreduce.Dataset[T]
}

// DPRead partitions data into n sampled differing records S and the
// remaining records S' (the dpread constructor of Table I). Sampling is
// uniform without replacement and deterministic in rng. n is clamped to
// len(data); data must be non-empty.
func DPRead[T any](eng *mapreduce.Engine, data []T, n int, rng *stats.RNG) (*DPDataset[T], error) {
	if eng == nil {
		return nil, fmt.Errorf("dpop: nil engine")
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("dpop: dpread of empty dataset")
	}
	if n < 1 {
		return nil, fmt.Errorf("dpop: sample size must be >= 1, got %d", n)
	}
	if n > len(data) {
		n = len(data)
	}
	idx := rng.SampleIndices(len(data), n)
	inSample := make(map[int]bool, n)
	samples := make([]T, n)
	for i, j := range idx {
		samples[i] = data[j]
		inSample[j] = true
	}
	restSlice := make([]T, 0, len(data)-n)
	for i, rec := range data {
		if !inSample[i] {
			restSlice = append(restSlice, rec)
		}
	}
	parts := eng.Workers()
	if parts > len(restSlice) {
		parts = len(restSlice)
	}
	var rest *mapreduce.Dataset[T]
	if len(restSlice) > 0 {
		var err error
		rest, err = mapreduce.FromSlice(eng, restSlice, parts)
		if err != nil {
			return nil, err
		}
	}
	return &DPDataset[T]{eng: eng, samples: samples, rest: rest}, nil
}

// Engine returns the engine the dataset is bound to.
func (d *DPDataset[T]) Engine() *mapreduce.Engine { return d.eng }

// SampleSize reports |S|.
func (d *DPDataset[T]) SampleSize() int { return len(d.samples) }

// RestSize reports |S'|.
func (d *DPDataset[T]) RestSize() (int, error) {
	if d.rest == nil {
		return 0, nil
	}
	return d.rest.Count()
}

// MapDP applies f to both S and S' (the mapDP member function of Table I).
// The sampled side is mapped eagerly through the engine; the remaining side
// stays lazy.
func MapDP[T, U any](d *DPDataset[T], f func(T) U) (*DPDataset[U], error) {
	mappedSamples, err := mapSlice(d.eng, d.samples, f)
	if err != nil {
		return nil, err
	}
	out := &DPDataset[U]{eng: d.eng, samples: mappedSamples}
	if d.rest != nil {
		out.rest = mapreduce.Map(d.rest, f)
	}
	return out, nil
}

// FilterDP keeps, on both sides, the records satisfying keep. Filtered-out
// sampled records still occupy their sample slot (their removal is a no-op
// neighbour), matching how Spark UPA evaluates Filter inside the mapper.
func FilterDP[T any](d *DPDataset[T], keep func(T) bool, zero T) (*DPDataset[T], error) {
	mapped, err := mapSlice(d.eng, d.samples, func(t T) T {
		if keep(t) {
			return t
		}
		return zero
	})
	if err != nil {
		return nil, err
	}
	out := &DPDataset[T]{eng: d.eng, samples: mapped}
	if d.rest != nil {
		out.rest = mapreduce.Filter(d.rest, keep)
	}
	return out, nil
}

// ReduceResult is what reduceDP returns (Table I: "the output value of
// sampled neighbouring datasets and query result").
type ReduceResult[T any] struct {
	// Result is the reduction over the whole input, R(M(x)).
	Result T
	// Neighbours[i] is the reduction with sampled record i removed,
	// R(M(x - s_i)).
	Neighbours []T
}

// ReduceDP reduces S and S' with the commutative, associative f and returns
// the query result together with the output values of all sampled
// neighbouring datasets. R(M(S')) is computed once on the engine and reused
// for every neighbour via prefix/suffix partial reductions — the
// union-preserving reduce of §IV-A at operator granularity.
func ReduceDP[T any](d *DPDataset[T], f mapreduce.Reducer[T]) (*ReduceResult[T], error) {
	if len(d.samples) == 0 {
		return nil, fmt.Errorf("dpop: reduceDP with no sampled records")
	}
	var (
		restVal T
		restOK  bool
	)
	if d.rest != nil {
		v, err := mapreduce.Reduce(d.rest, f)
		switch {
		case err == nil:
			restVal, restOK = v, true
		case errors.Is(err, mapreduce.ErrEmptyDataset):
			// no remaining records: neighbours come from samples alone
		default:
			return nil, err
		}
	}

	n := len(d.samples)
	pre := make([]T, n)
	suf := make([]T, n)
	pre[0] = d.samples[0]
	for i := 1; i < n; i++ {
		pre[i] = f(pre[i-1], d.samples[i])
	}
	suf[n-1] = d.samples[n-1]
	for i := n - 2; i >= 0; i-- {
		suf[i] = f(d.samples[i], suf[i+1])
	}
	if n > 1 {
		d.eng.AccountReduceOps(int64(2 * (n - 1)))
	}

	combine := func(a T, aOK bool, b T, bOK bool) (T, bool) {
		switch {
		case aOK && bOK:
			d.eng.AccountReduceOps(1)
			return f(a, b), true
		case aOK:
			return a, true
		case bOK:
			return b, true
		default:
			var zero T
			return zero, false
		}
	}

	res := &ReduceResult[T]{Neighbours: make([]T, 0, n)}
	full, ok := combine(restVal, restOK, pre[n-1], true)
	if !ok {
		return nil, fmt.Errorf("dpop: reduceDP over empty input")
	}
	res.Result = full
	for i := 0; i < n; i++ {
		var rest T
		restPartOK := false
		switch {
		case n == 1:
			// removing the only sample leaves S' alone
		case i == 0:
			rest, restPartOK = suf[1], true
		case i == n-1:
			rest, restPartOK = pre[n-2], true
		default:
			d.eng.AccountReduceOps(1)
			rest, restPartOK = f(pre[i-1], suf[i+1]), true
		}
		neighbour, nOK := combine(restVal, restOK, rest, restPartOK)
		if !nOK {
			// x had exactly one record; its removal leaves an empty
			// dataset, which has no reduction value. Skip, as Spark's
			// reduce would.
			continue
		}
		res.Neighbours = append(res.Neighbours, neighbour)
	}
	return res, nil
}

// SpreadFloat64 converts scalar neighbouring outputs into the local
// sensitivity they witness: max |result - neighbour|.
func (r *ReduceResult[T]) SpreadFloat64(value func(T) float64) float64 {
	base := value(r.Result)
	worst := 0.0
	for _, n := range r.Neighbours {
		diff := value(n) - base
		if diff < 0 {
			diff = -diff
		}
		if diff > worst {
			worst = diff
		}
	}
	return worst
}

func mapSlice[T, U any](eng *mapreduce.Engine, in []T, f func(T) U) ([]U, error) {
	if len(in) == 0 {
		return nil, nil
	}
	parts := eng.Workers()
	if parts > len(in) {
		parts = len(in)
	}
	ds, err := mapreduce.FromSlice(eng, in, parts)
	if err != nil {
		return nil, err
	}
	return mapreduce.Map(ds, f).Collect()
}
