package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// This file grows the package from a per-package AST walker into a
// lightweight interprocedural engine: a Module indexes every function
// declaration across the loaded packages, resolves call sites to module
// functions by name (exact where the tolerant type information allows,
// unique-name fallback where stub imports leave a method unresolved), and
// carries the module-wide fact tables — DP taint sources and sinks,
// //upa:guardedby fields, error sentinels — that dpflow, lockdiscipline,
// and errorwrap consume. Per-function summaries (taint.go, locks.go) are
// computed over this index by a deterministic fixpoint and serialized as
// Facts through the vet-driver's vetx channel, so per-package vettool runs
// see cross-package summaries too.

// Annotation markers recognized on declarations. All of them ride in
// ordinary comments so the tree builds identically with or without upa-vet.
const (
	// MarkerDPSource on a function declaration: its results carry pre-noise
	// protected data. On a struct field: every read of a field with that
	// name (module-wide) is a taint source.
	MarkerDPSource = "//upa:dpsource"
	// MarkerDPSink on a function declaration: its parameters are
	// user-visible sinks (formatting, HTTP responses, metrics).
	MarkerDPSink = "//upa:dpsink"
	// MarkerDPSanitize on a function declaration: it is a blessed
	// noise/release boundary; its results are clean regardless of inputs.
	MarkerDPSanitize = "//upa:dpsanitize"
)

// guardedByRE matches one //upa:guardedby(<mutex-field>) field annotation.
var guardedByRE = regexp.MustCompile(`//upa:guardedby\(([A-Za-z_][A-Za-z0-9_]*)\)`)

// FuncKey names a function declaration module-wide: package import path,
// receiver type name (empty for plain functions, pointer-ness erased), and
// function name. It is the join key between call sites, summaries, and
// serialized facts.
type FuncKey struct {
	Pkg  string `json:"pkg"`
	Recv string `json:"recv,omitempty"`
	Name string `json:"name"`
}

func (k FuncKey) String() string {
	if k.Recv != "" {
		return k.Pkg + ".(" + k.Recv + ")." + k.Name
	}
	return k.Pkg + "." + k.Name
}

// FuncInfo is one function declaration plus its parsed annotations.
type FuncInfo struct {
	Key  FuncKey
	Decl *ast.FuncDecl
	Pkg  *Package

	// DPSource / DPSink / DPSanitize mirror the //upa:dpsource,
	// //upa:dpsink, //upa:dpsanitize markers on the declaration.
	DPSource   bool
	DPSink     bool
	DPSanitize bool
}

// CallerMustHold reports whether the function is exempt from acquiring the
// locks it touches because its contract pushes that duty to the caller.
// The repo-wide convention is the *Locked name suffix.
func (fi *FuncInfo) CallerMustHold() bool {
	return strings.HasSuffix(fi.Key.Name, "Locked")
}

// GuardedField records one //upa:guardedby(mu) annotation: the named field
// of the named struct may only be accessed while the sibling mutex field is
// held.
type GuardedField struct {
	Pkg    string `json:"pkg"`
	Struct string `json:"struct"`
	Field  string `json:"field"`
	Lock   string `json:"lock"`
}

// Sentinel is one package-level `var ErrX = errors.New(...)` declaration.
type Sentinel struct {
	Pkg  string `json:"pkg"`
	Name string `json:"name"`
}

// FuncSummary is the interprocedural summary of one function, computed by
// the taint and lock fixpoints and propagated across package boundaries as
// facts.
type FuncSummary struct {
	Key FuncKey `json:"func"`
	// Source: the results carry pre-noise protected data (annotated
	// //upa:dpsource, or derived: the body returns tainted values).
	Source bool `json:"source,omitempty"`
	// Sanitize: results are clean regardless of inputs (//upa:dpsanitize
	// or a recognized noise primitive).
	Sanitize bool `json:"sanitize,omitempty"`
	// SinkParams lists parameter indexes that reach a user-visible sink
	// inside the function (directly or through further calls).
	SinkParams []int `json:"sinkParams,omitempty"`
	// TaintParams lists parameter indexes that flow into the results.
	TaintParams []int `json:"taintParams,omitempty"`
	// RequiresLocks lists mutex field names the caller must hold (only
	// *Locked-suffixed functions export this; others must lock locally).
	RequiresLocks []string `json:"requiresLocks,omitempty"`
}

func (s *FuncSummary) sinksParam(i int) bool {
	for _, p := range s.SinkParams {
		if p == i {
			return true
		}
	}
	return false
}

func (s *FuncSummary) taintsFromParam(i int) bool {
	for _, p := range s.TaintParams {
		if p == i {
			return true
		}
	}
	return false
}

// Facts is the serializable interprocedural state of a module (or of one
// package, in vet-driver unit mode): function summaries plus the annotation
// tables downstream packages need. The encoding is canonical — sorted keys,
// no token positions — so identical trees yield byte-identical facts.
type Facts struct {
	Summaries   []FuncSummary  `json:"summaries"`
	Guarded     []GuardedField `json:"guardedFields,omitempty"`
	Sentinels   []Sentinel     `json:"sentinels,omitempty"`
	TaintFields []string       `json:"taintFields,omitempty"`
}

// Encode renders the facts in canonical JSON.
func (f *Facts) Encode() ([]byte, error) {
	sortFacts(f)
	return json.MarshalIndent(f, "", "\t")
}

// DecodeFacts parses facts previously produced by Encode.
func DecodeFacts(data []byte) (*Facts, error) {
	var f Facts
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("analysis: decode facts: %w", err)
	}
	return &f, nil
}

// Merge appends other's facts onto f. Duplicate summaries are harmless:
// Module.AddFacts keys them by FuncKey, so the last write wins, and the
// annotation tables are sets.
func (f *Facts) Merge(other *Facts) {
	if other == nil {
		return
	}
	f.Summaries = append(f.Summaries, other.Summaries...)
	f.Guarded = append(f.Guarded, other.Guarded...)
	f.Sentinels = append(f.Sentinels, other.Sentinels...)
	f.TaintFields = append(f.TaintFields, other.TaintFields...)
}

func lessKey(a, b FuncKey) bool {
	if a.Pkg != b.Pkg {
		return a.Pkg < b.Pkg
	}
	if a.Recv != b.Recv {
		return a.Recv < b.Recv
	}
	return a.Name < b.Name
}

func sortFacts(f *Facts) {
	sort.Slice(f.Summaries, func(i, j int) bool { return lessKey(f.Summaries[i].Key, f.Summaries[j].Key) })
	for i := range f.Summaries {
		sort.Ints(f.Summaries[i].SinkParams)
		sort.Ints(f.Summaries[i].TaintParams)
		sort.Strings(f.Summaries[i].RequiresLocks)
	}
	sort.Slice(f.Guarded, func(i, j int) bool {
		a, b := f.Guarded[i], f.Guarded[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Struct != b.Struct {
			return a.Struct < b.Struct
		}
		return a.Field < b.Field
	})
	sort.Slice(f.Sentinels, func(i, j int) bool {
		a, b := f.Sentinels[i], f.Sentinels[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		return a.Name < b.Name
	})
	sort.Strings(f.TaintFields)
}

// Module is the interprocedural index over one RunAnalyzers load.
type Module struct {
	Pkgs []*Package

	funcs    map[FuncKey]*FuncInfo
	byMethod map[string][]*FuncInfo // methods only, keyed by bare name

	guarded     map[string][]GuardedField // field name -> annotations
	sentinels   map[Sentinel]bool
	taintFields map[string]bool

	// external holds facts imported through the vetx channel (vet-driver
	// unit mode analyzes one package at a time; its dependencies arrive
	// here instead of as parsed FuncInfos).
	external map[FuncKey]*FuncSummary

	summaries map[FuncKey]*FuncSummary
}

// NewModule indexes the loaded packages: declarations, annotations,
// sentinels, and guarded fields. Summaries are computed on first use.
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:        pkgs,
		funcs:       make(map[FuncKey]*FuncInfo),
		byMethod:    make(map[string][]*FuncInfo),
		guarded:     make(map[string][]GuardedField),
		sentinels:   make(map[Sentinel]bool),
		taintFields: make(map[string]bool),
		external:    make(map[FuncKey]*FuncSummary),
	}
	for _, pkg := range pkgs {
		m.indexPackage(pkg)
	}
	return m
}

// AddFacts merges externally computed facts (the vetx channel) into the
// module. Locally declared functions always win over imported summaries.
func (m *Module) AddFacts(f *Facts) {
	if f == nil {
		return
	}
	for i := range f.Summaries {
		s := f.Summaries[i]
		if _, local := m.funcs[s.Key]; local {
			continue
		}
		m.external[s.Key] = &s
	}
	for _, g := range f.Guarded {
		m.guarded[g.Field] = append(m.guarded[g.Field], g)
	}
	for _, s := range f.Sentinels {
		m.sentinels[s] = true
	}
	for _, name := range f.TaintFields {
		m.taintFields[name] = true
	}
}

func (m *Module) indexPackage(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				m.indexFunc(pkg, d)
			case *ast.GenDecl:
				m.indexGenDecl(pkg, d)
			}
		}
	}
}

func (m *Module) indexFunc(pkg *Package, d *ast.FuncDecl) {
	fi := &FuncInfo{
		Key:        FuncKey{Pkg: pkg.Path, Recv: recvTypeName(d), Name: d.Name.Name},
		Decl:       d,
		Pkg:        pkg,
		DPSource:   docHasMarker(d.Doc, MarkerDPSource),
		DPSink:     docHasMarker(d.Doc, MarkerDPSink),
		DPSanitize: docHasMarker(d.Doc, MarkerDPSanitize),
	}
	m.funcs[fi.Key] = fi
	if fi.Key.Recv != "" {
		m.byMethod[fi.Key.Name] = append(m.byMethod[fi.Key.Name], fi)
	}
}

func (m *Module) indexGenDecl(pkg *Package, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		switch sp := spec.(type) {
		case *ast.TypeSpec:
			st, ok := sp.Type.(*ast.StructType)
			if !ok || st.Fields == nil {
				continue
			}
			for _, field := range st.Fields.List {
				m.indexStructField(pkg, sp.Name.Name, field)
			}
		case *ast.ValueSpec:
			// Package-level `var ErrX = errors.New(...)` sentinels.
			if d.Tok.String() != "var" {
				continue
			}
			for i, name := range sp.Names {
				if !strings.HasPrefix(name.Name, "Err") || i >= len(sp.Values) {
					continue
				}
				if call, ok := sp.Values[i].(*ast.CallExpr); ok && isErrorsNew(pkg, call) {
					m.sentinels[Sentinel{Pkg: pkg.Path, Name: name.Name}] = true
				}
			}
		}
	}
}

func (m *Module) indexStructField(pkg *Package, structName string, field *ast.Field) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if mm := guardedByRE.FindStringSubmatch(c.Text); mm != nil {
				for _, name := range field.Names {
					m.guarded[name.Name] = append(m.guarded[name.Name], GuardedField{
						Pkg: pkg.Path, Struct: structName, Field: name.Name, Lock: mm[1],
					})
				}
			}
			if strings.Contains(c.Text, MarkerDPSource) {
				for _, name := range field.Names {
					m.taintFields[name.Name] = true
				}
			}
		}
	}
}

// docHasMarker reports whether the comment group contains the marker as a
// standalone directive line.
func docHasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), marker) {
			return true
		}
	}
	return false
}

// isErrorsNew reports whether call is errors.New(...) or fmt.Errorf(...)
// resolved through a real (non-shadowed) import.
func isErrorsNew(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	path := pkg.importPathOf(id)
	return (path == "errors" && sel.Sel.Name == "New") ||
		(path == "fmt" && sel.Sel.Name == "Errorf")
}

// recvTypeName extracts the receiver's type name with pointers and type
// parameters erased; "" for plain functions.
func recvTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	return baseTypeName(d.Recv.List[0].Type)
}

func baseTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return baseTypeName(t.X)
	case *ast.IndexExpr: // generic receiver: store[T]
		return baseTypeName(t.X)
	case *ast.IndexListExpr:
		return baseTypeName(t.X)
	case *ast.ParenExpr:
		return baseTypeName(t.X)
	}
	return ""
}

// importPathOf is Pass.ImportPathOf at the package level.
func (p *Package) importPathOf(ident *ast.Ident) string {
	if obj, ok := p.Info.Uses[ident]; ok {
		if pkg, ok := obj.(*types.PkgName); ok {
			return pkg.Imported().Path()
		}
	}
	return ""
}

// Func returns the declaration indexed under key, or nil.
func (m *Module) Func(key FuncKey) *FuncInfo { return m.funcs[key] }

// FuncInfoFor returns the module's record for a declaration of pkg.
func (m *Module) FuncInfoFor(pkg *Package, d *ast.FuncDecl) *FuncInfo {
	return m.funcs[FuncKey{Pkg: pkg.Path, Recv: recvTypeName(d), Name: d.Name.Name}]
}

// GuardedFieldsFor returns the //upa:guardedby annotations recorded for a
// field name, across all packages and external facts.
func (m *Module) GuardedFieldsFor(field string) []GuardedField { return m.guarded[field] }

// GuardedFields returns every annotation, unsorted.
func (m *Module) GuardedFields() []GuardedField {
	var out []GuardedField
	for _, gs := range m.guarded {
		out = append(out, gs...)
	}
	return out
}

// IsSentinel reports whether (pkg, name) is an indexed error sentinel.
func (m *Module) IsSentinel(pkg, name string) bool {
	return m.sentinels[Sentinel{Pkg: pkg, Name: name}]
}

// IsTaintField reports whether reads of fields with this name are taint
// sources (//upa:dpsource on a struct field somewhere in the module).
func (m *Module) IsTaintField(name string) bool { return m.taintFields[name] }

// Callee is the resolution of one call site. Exactly one of Func (a module
// declaration) or Ext (an external package function / builtin) is set;
// neither is set for calls the name-based resolver cannot place (dynamic
// calls through arbitrary function values, unresolvable methods).
type Callee struct {
	Func *FuncInfo
	Ext  ExtCallee
	// Name is the bare callee name, always set when any resolution
	// happened (used by method-name sink heuristics on unresolved calls).
	Name string
	// Method marks an unresolved method call (x.Name(...)).
	Method bool
}

// ExtCallee names a function outside the loaded module.
type ExtCallee struct {
	Path string // import path; "builtin" for builtins, "" when unknown
	Name string
}

// ResolveCall resolves a call expression occurring in pkg. aliases maps
// local function-value variables (`infer := inferSensitivity`) to their
// targets; pass nil when not tracking them.
func (m *Module) ResolveCall(pkg *Package, call *ast.CallExpr, aliases map[types.Object]*FuncInfo) Callee {
	fun := ast.Unparen(call.Fun)
	// Unwrap generic instantiation: f[T](...).
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	switch f := fun.(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[f]
		if obj != nil {
			if fi, ok := aliases[obj]; ok && fi != nil {
				return Callee{Func: fi, Name: fi.Key.Name}
			}
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
				return Callee{Ext: ExtCallee{Path: "builtin", Name: f.Name}, Name: f.Name}
			}
			if _, isType := obj.(*types.TypeName); isType {
				// Conversion, not a call.
				return Callee{Ext: ExtCallee{Path: "conv", Name: f.Name}, Name: f.Name}
			}
		}
		if fi := m.funcs[FuncKey{Pkg: pkg.Path, Name: f.Name}]; fi != nil {
			// A local variable shadowing a function name would carry a
			// *types.Var use; only resolve true function references.
			if _, isVar := obj.(*types.Var); !isVar {
				return Callee{Func: fi, Name: f.Name}
			}
		}
		return Callee{Name: f.Name}
	case *ast.SelectorExpr:
		name := f.Sel.Name
		if id, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			if path := pkg.importPathOf(id); path != "" {
				if fi := m.funcs[FuncKey{Pkg: path, Name: name}]; fi != nil {
					return Callee{Func: fi, Name: name}
				}
				return Callee{Ext: ExtCallee{Path: path, Name: name}, Name: name}
			}
		}
		// Method call: resolve the receiver's type locally when possible.
		if recvPkg, recvType, ok := m.receiverType(pkg, f.X); ok {
			if fi := m.funcs[FuncKey{Pkg: recvPkg, Recv: recvType, Name: name}]; fi != nil {
				return Callee{Func: fi, Name: name, Method: true}
			}
		}
		// Fallback: a method name declared exactly once module-wide is
		// unambiguous even when stub imports hide the receiver type.
		if cands := m.byMethod[name]; len(cands) == 1 {
			return Callee{Func: cands[0], Name: name, Method: true}
		}
		return Callee{Name: name, Method: true}
	}
	return Callee{}
}

// receiverType resolves the static type of a method call receiver to
// (package path, type name) using the tolerant type info. Only types
// declared in the loaded packages resolve; stubbed imports do not.
func (m *Module) receiverType(pkg *Package, recv ast.Expr) (string, string, bool) {
	tv, ok := pkg.Info.Types[ast.Unparen(recv)]
	if !ok || tv.Type == nil {
		return "", "", false
	}
	t := tv.Type
	for {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", "", false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// SummaryFor returns the interprocedural summary for key: computed for
// module declarations, imported for external facts, nil otherwise.
func (m *Module) SummaryFor(key FuncKey) *FuncSummary {
	m.computeSummaries()
	if s, ok := m.summaries[key]; ok {
		return s
	}
	return m.external[key]
}

// SummaryForCallee is SummaryFor keyed off a resolution result.
func (m *Module) SummaryForCallee(c Callee) *FuncSummary {
	if c.Func != nil {
		return m.SummaryFor(c.Func.Key)
	}
	if c.Ext.Path != "" {
		return m.SummaryFor(FuncKey{Pkg: c.Ext.Path, Name: c.Ext.Name})
	}
	return nil
}

// Facts serializes the module's computed summaries and annotation tables.
func (m *Module) Facts() *Facts {
	m.computeSummaries()
	f := &Facts{}
	for _, s := range m.summaries {
		if s.Source || s.Sanitize || len(s.SinkParams) > 0 || len(s.TaintParams) > 0 || len(s.RequiresLocks) > 0 {
			f.Summaries = append(f.Summaries, *s)
		}
	}
	f.Guarded = append(f.Guarded, m.GuardedFields()...)
	for s := range m.sentinels {
		f.Sentinels = append(f.Sentinels, s)
	}
	for name := range m.taintFields {
		f.TaintFields = append(f.TaintFields, name)
	}
	sortFacts(f)
	return f
}

// sortedFuncKeys returns every local declaration key in deterministic order.
func (m *Module) sortedFuncKeys() []FuncKey {
	keys := make([]FuncKey, 0, len(m.funcs))
	for k := range m.funcs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lessKey(keys[i], keys[j]) })
	return keys
}

// computeSummaries runs the taint and lock fixpoints over every local
// declaration. Iteration is in sorted key order and repeats until no
// summary changes, so the result is independent of map ordering.
func (m *Module) computeSummaries() {
	if m.summaries != nil {
		return
	}
	m.summaries = make(map[FuncKey]*FuncSummary)
	keys := m.sortedFuncKeys()
	for _, k := range keys {
		fi := m.funcs[k]
		s := &FuncSummary{
			Key:      k,
			Source:   fi.DPSource,
			Sanitize: fi.DPSanitize || isBlessedSanitizer(k),
		}
		if fi.DPSink {
			// Annotated sinks export every parameter, so cross-package
			// callers reached through facts alone see them too.
			for i := range paramObjects(fi) {
				s.SinkParams = append(s.SinkParams, i)
			}
		}
		m.summaries[k] = s
	}
	for iter := 0; iter < 10; iter++ {
		changed := false
		for _, k := range keys {
			if m.updateSummary(m.funcs[k]) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// isBlessedSanitizer recognizes the repo's noise primitives without
// requiring annotations at every mechanism.
func isBlessedSanitizer(k FuncKey) bool {
	switch k.Name {
	case "Perturb", "PerturbVector":
		return true
	}
	return false
}

// updateSummary recomputes one function's summary from its body and the
// current summaries of its callees; reports whether anything grew.
func (m *Module) updateSummary(fi *FuncInfo) bool {
	if fi.Decl.Body == nil {
		return false
	}
	s := m.summaries[fi.Key]
	changed := false

	// Taint: Source (ambient walk), SinkParams / TaintParams (per-param).
	if !s.Sanitize {
		amb := newTaintWalk(m, fi, nil)
		amb.run()
		if amb.resultTainted && !s.Source {
			s.Source = true
			changed = true
		}
		for i, obj := range paramObjects(fi) {
			if obj == nil {
				continue
			}
			tw := newTaintWalk(m, fi, []types.Object{obj})
			tw.run()
			if len(tw.hits) > 0 && !s.sinksParam(i) {
				s.SinkParams = append(s.SinkParams, i)
				sort.Ints(s.SinkParams)
				changed = true
			}
			if tw.resultTainted && !s.taintsFromParam(i) {
				s.TaintParams = append(s.TaintParams, i)
				sort.Ints(s.TaintParams)
				changed = true
			}
		}
	}

	// Locks: only *Locked helpers export caller-must-hold requirements.
	if fi.CallerMustHold() {
		ls := newLockScan(m, fi)
		ls.run()
		for _, need := range ls.needs {
			if !containsString(s.RequiresLocks, need.Lock) {
				s.RequiresLocks = append(s.RequiresLocks, need.Lock)
				sort.Strings(s.RequiresLocks)
				changed = true
			}
		}
	}
	return changed
}

// paramObjects resolves the declared objects of fi's parameters, in order.
// Unnamed and blank parameters yield nil entries.
func paramObjects(fi *FuncInfo) []types.Object {
	var out []types.Object
	if fi.Decl.Type.Params == nil {
		return nil
	}
	for _, field := range fi.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				out = append(out, nil)
				continue
			}
			out = append(out, fi.Pkg.Info.Defs[name])
		}
	}
	return out
}

func containsString(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
