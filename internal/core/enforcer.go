package core

import (
	"sync"

	"upa/internal/stats"
)

// RangeEnforcer implements Algorithm 2. It keeps, for every query released
// so far, the query's output on the two partitions of its input dataset.
// When a new query's partition outputs collide with a prior query's on at
// least one partition, the two input datasets may be neighbouring and the
// two queries may be the same (the attack of §III); the enforcer then forces
// records to be removed until both partitions differ, and it clamps the
// final output into the inferred output range so the released local
// sensitivity is always an upper bound (the prerequisite of the §IV-C iDP
// proof).
//
// The history deliberately keys on *partition outputs*, not query syntax:
// two syntactically different queries with the same input-output mapping
// produce the same partition outputs on overlapping data, which is exactly
// how the paper identifies "the same query" robustly (§IV-B).
//
// A RangeEnforcer is safe for concurrent use.
type RangeEnforcer struct {
	mu      sync.Mutex
	tol     float64
	history []historyEntry
}

type historyEntry struct {
	name  string
	parts [2][]float64
}

// NewRangeEnforcer builds an enforcer that compares outputs with the given
// relative tolerance (non-positive values fall back to 1e-9).
func NewRangeEnforcer(tol float64) *RangeEnforcer {
	if tol <= 0 {
		tol = 1e-9
	}
	return &RangeEnforcer{tol: tol}
}

// HistoryLen reports how many query releases the enforcer has recorded.
func (e *RangeEnforcer) HistoryLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.history)
}

// Reset drops the recorded history (used between independent experiments).
func (e *RangeEnforcer) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.history = nil
}

// Collides reports whether parts matches some prior query's partition
// outputs on at least one partition — Case 2 of §IV-B: fewer than two
// partitions differ, so the two input datasets may be neighbouring and the
// analyst may be conducting an attack. It returns the name of the first
// colliding prior query for diagnostics.
func (e *RangeEnforcer) Collides(parts [2][]float64) (string, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, prior := range e.history {
		diffNum := 0
		for j := 0; j < 2; j++ {
			if !vectorsAlmostEqual(prior.parts[j], parts[j], e.tol) {
				diffNum++
			}
		}
		if diffNum < 2 {
			return prior.name, true
		}
	}
	return "", false
}

// Record stores the partition outputs of a released query (Algorithm 2,
// lines 19–21).
func (e *RangeEnforcer) Record(name string, parts [2][]float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.history = append(e.history, historyEntry{
		name:  name,
		parts: [2][]float64{cloneVec(parts[0]), cloneVec(parts[1])},
	})
}

// Clamp constrains output into [lo, hi] coordinate-wise: any coordinate
// outside its range is replaced by a uniformly random value inside it
// (Algorithm 2, lines 17–18). It returns the clamped vector (a fresh slice)
// and how many coordinates were clamped.
func Clamp(output, lo, hi []float64, rng *stats.RNG) ([]float64, int) {
	out := make([]float64, len(output))
	clamped := 0
	for i, v := range output {
		if v < lo[i] || v > hi[i] {
			out[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
			clamped++
		} else {
			out[i] = v
		}
	}
	return out, clamped
}
