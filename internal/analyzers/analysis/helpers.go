package analysis

import (
	"go/ast"
	"go/types"
)

// HasContextParam reports whether the function type declares a parameter of
// type context.Context. The check resolves the `context` qualifier through
// the type info, so a local variable shadowing the import does not count.
func (p *Pass) HasContextParam(ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			continue
		}
		if p.ImportPathOf(ident) == "context" {
			return true
		}
	}
	return false
}

// FuncTypeOf returns the signature of a function declaration or literal
// node, or nil.
func FuncTypeOf(n ast.Node) *ast.FuncType {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Type
	case *ast.FuncLit:
		return fn.Type
	}
	return nil
}

// RootIdent walks down an assignable expression (x, x.f, x[i], *x, and
// combinations) to the identifier at its base, or nil when the base is not
// an identifier (e.g. a function call result).
func RootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// ObjectOf resolves an identifier to its object via Uses or Defs.
func (p *Pass) ObjectOf(ident *ast.Ident) types.Object {
	if obj, ok := p.TypesInfo.Uses[ident]; ok {
		return obj
	}
	if obj, ok := p.TypesInfo.Defs[ident]; ok {
		return obj
	}
	return nil
}

// DeclaredWithin reports whether the object ident refers to was declared
// inside node's source range — e.g. whether a variable assigned in a
// function literal is one of the literal's own locals or parameters rather
// than a captured outer variable. Unresolved identifiers (stub imports)
// report false.
func (p *Pass) DeclaredWithin(ident *ast.Ident, node ast.Node) bool {
	obj := p.ObjectOf(ident)
	if obj == nil {
		return false
	}
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// IsMapType reports whether expr's type is (or is inferred to be) a map.
// Types imported from stubbed packages are unresolved and report false.
func (p *Pass) IsMapType(expr ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	type hasUnderlying interface{ Underlying() types.Type }
	t := tv.Type
	// Resolve through named types and type parameters' core types.
	if tp, ok := t.(*types.TypeParam); ok {
		if core := tp.Constraint(); core != nil {
			return false // conservatively: a type parameter is never "a map"
		}
	}
	if u, ok := t.(hasUnderlying); ok {
		_, isMap := u.Underlying().(*types.Map)
		return isMap
	}
	return false
}
