package mapreduce

import "sync"

// memo caches the first successful result of a fallible load so several
// child partitions share one materialization. Unlike sync.Once, a failed
// attempt is NOT cached: the next caller retries the load. This matters
// under cancellation — a shuffle aborted by a cancelled context must not
// permanently poison the dataset for later, healthy collections.
//
// Concurrent callers serialize on the mutex, so at most one load runs at a
// time and every waiter observes either the cached success or its own retry.
type memo[T any] struct {
	mu   sync.Mutex
	done bool
	val  T
}

// get returns the cached value, or runs load and caches its result on
// success. Errors are returned to the caller and never cached.
func (m *memo[T]) get(load func() (T, error)) (T, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done {
		return m.val, nil
	}
	val, err := load()
	if err != nil {
		var zero T
		return zero, err
	}
	m.val, m.done = val, true
	return val, nil
}
