package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func smallArgs(extra ...string) []string {
	base := []string{"-lineitems", "2000", "-lsrecords", "1500", "-n", "200", "-trials", "1", "-reps", "1"}
	return append(base, extra...)
}

func TestRunTable2(t *testing.T) {
	var out strings.Builder
	if err := run(smallArgs("-experiment", "table2"), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"Table II", "TPCH21", "Linear Regression", "yes", "no"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFig2a(t *testing.T) {
	var out strings.Builder
	if err := run(smallArgs("-experiment", "fig2a"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "relative RMSE") {
		t.Error("output missing RMSE header")
	}
	if !strings.Contains(out.String(), "unsupported") {
		t.Error("output missing unsupported markers for non-count queries")
	}
}

func TestRunFig2b(t *testing.T) {
	var out strings.Builder
	if err := run(smallArgs("-experiment", "fig2b"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mean overhead") {
		t.Error("output missing overhead summary")
	}
}

func TestRunFig3WithSampleSweep(t *testing.T) {
	var out strings.Builder
	if err := run(smallArgs("-experiment", "fig3", "-samples", "50,150"), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "n=50") || !strings.Contains(text, "n=150") {
		t.Errorf("sample sweep not applied:\n%s", text[:min(400, len(text))])
	}
}

func TestRunFig4aWithScales(t *testing.T) {
	var out strings.Builder
	if err := run(smallArgs("-experiment", "fig4a", "-scales", "1,2"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "4000") { // 2000 * 2
		t.Error("scale sweep not applied")
	}
}

func TestRunFig4b(t *testing.T) {
	var out strings.Builder
	if err := run(smallArgs("-experiment", "fig4b", "-samples", "50,100"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cache hits") {
		t.Error("output missing cache hit column")
	}
}

func TestRunShuffle(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run(smallArgs("-experiment", "shuffle", "-csvdir", dir), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Map-side combine") {
		t.Error("output missing shuffle sweep header")
	}
	data, err := os.ReadFile(filepath.Join(dir, "shuffle.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "skew,records,partitions") {
		t.Errorf("csv header wrong: %q", string(data[:min(60, len(data))]))
	}
}

func TestRunSpill(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run(smallArgs("-experiment", "spill", "-csvdir", dir), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Out-of-core execution") {
		t.Error("output missing spill sweep header")
	}
	data, err := os.ReadFile(filepath.Join(dir, "spill.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "budget,records,partitions") {
		t.Errorf("csv header wrong: %q", string(data[:min(60, len(data))]))
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run(smallArgs("-experiment", "table2", "-csvdir", dir), &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.HasPrefix(text, "query,rows,kind,upa,flex") {
		t.Errorf("csv header wrong: %q", text[:min(60, len(text))])
	}
	if !strings.Contains(text, "TPCH21") {
		t.Error("csv missing rows")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run(smallArgs("-experiment", "fig9"), &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunRejectsBadSamples(t *testing.T) {
	var out strings.Builder
	if err := run(smallArgs("-experiment", "fig3", "-samples", "10,abc"), &out); err == nil {
		t.Fatal("malformed -samples accepted")
	}
	if err := run(smallArgs("-experiment", "fig3", "-samples", "0"), &out); err == nil {
		t.Fatal("non-positive -samples accepted")
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts(" 1, 2,30 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 30 {
		t.Fatalf("parseInts = %v", got)
	}
	if got, err := parseInts(""); err != nil || got != nil {
		t.Fatalf("parseInts(\"\") = %v, %v", got, err)
	}
}
