package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, tolerantly type-checked package.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory the files were read from.
	Dir  string
	Fset *token.FileSet
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Info holds the tolerant type-check results (see Pass.TypesInfo).
	Info *types.Info
}

// stubImporter satisfies types.Importer without reading anything from disk:
// every import resolves to an empty, complete package whose name is guessed
// from the import path. Selector lookups into these stubs fail (the errors
// are swallowed by the tolerant type-check), but the binding of a file's
// import identifier to its path — all the UPA analyzers need — is exact.
type stubImporter struct {
	pkgs map[string]*types.Package
}

func (s *stubImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := s.pkgs[path]; ok {
		return pkg, nil
	}
	pkg := types.NewPackage(path, guessPackageName(path))
	pkg.MarkComplete()
	s.pkgs[path] = pkg
	return pkg, nil
}

// guessPackageName derives a package name from an import path. The last
// path element is right for every package this repository imports; version
// suffixes and go- prefixes are normalized for robustness.
func guessPackageName(path string) string {
	name := path
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	if i := strings.LastIndex(name, "."); i >= 0 { // gopkg.in/yaml.v2 style
		name = name[:i]
	}
	name = strings.TrimPrefix(name, "go-")
	if name == "" {
		return "pkg"
	}
	return name
}

// LoadDir parses and tolerantly type-checks the non-test Go files of a
// single directory as the package importPath. Files that fail to parse are
// an error; type-check errors are expected (imports are stubs) and ignored.
func LoadDir(fset *token.FileSet, dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", filepath.Join(dir, name), err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:  make(map[ast.Expr]types.TypeAndValue),
		Defs:   make(map[*ast.Ident]types.Object),
		Uses:   make(map[*ast.Ident]types.Object),
		Scopes: make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:    &stubImporter{pkgs: make(map[string]*types.Package)},
		Error:       func(error) {}, // tolerant: stub imports guarantee errors
		FakeImportC: true,
	}
	// The returned error only repeats what Error already swallowed.
	conf.Check(importPath, fset, files, info) //nolint:errcheck
	return &Package{Path: importPath, Dir: dir, Fset: fset, Files: files, Info: info}, nil
}

// ModulePath reads the module path from root/go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}

// LoadModule loads every package under the module rooted at root, skipping
// hidden directories and testdata trees (which hold intentionally violating
// golden packages). The result is sorted by import path.
func LoadModule(root string) ([]*Package, error) {
	return LoadModuleDirs(root, root)
}

// LoadModuleDirs loads the packages under each of dirs (which must live
// inside the module rooted at root). Import paths are derived from the
// module path and the directory's location relative to root.
func LoadModuleDirs(root string, dirs ...string) ([]*Package, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	seen := make(map[string]bool)
	var pkgs []*Package
	for _, dir := range dirs {
		absDir, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		err = filepath.WalkDir(absDir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != absDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if seen[path] {
				return nil
			}
			seen[path] = true
			rel, err := filepath.Rel(absRoot, path)
			if err != nil || strings.HasPrefix(rel, "..") {
				return fmt.Errorf("analysis: %s is outside module root %s", path, absRoot)
			}
			importPath := modPath
			if rel != "." {
				importPath = modPath + "/" + filepath.ToSlash(rel)
			}
			pkg, err := LoadDir(fset, path, importPath)
			if err != nil {
				return err
			}
			if pkg != nil {
				pkgs = append(pkgs, pkg)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}
