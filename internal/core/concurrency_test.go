package core

import (
	"sync"
	"testing"

	"upa/internal/mapreduce"
)

// TestConcurrentReleases hammers one System from many goroutines: the
// enforcer history, the release counter, the engine metrics, and the
// per-release RNG streams must all hold up (run with -race to verify the
// absence of data races).
func TestConcurrentReleases(t *testing.T) {
	sys := newTestSystem(t, func(c *Config) { c.SampleSize = 30 })
	const goroutines = 8
	const perG = 5

	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Distinct datasets per goroutine avoid triggering the attack
			// path, which would make removal counts scheduling-dependent.
			data := make([]float64, 200+g)
			for i := range data {
				data[i] = float64(i * (g + 1))
			}
			for i := 0; i < perG; i++ {
				if _, err := Run(sys, sumQuery(), data, nil); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := sys.Enforcer().HistoryLen(); got != goroutines*perG {
		t.Fatalf("history length = %d, want %d", got, goroutines*perG)
	}
}

// TestConcurrentEnginesIndependent runs releases on independent systems in
// parallel; their results must equal a serial run (no shared global state).
func TestConcurrentEnginesIndependent(t *testing.T) {
	data := seqData(500)
	serial := func() float64 {
		sys := newTestSystem(t, func(c *Config) { c.Seed = 21 })
		res, err := Run(sys, sumQuery(), data, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Sensitivity[0]
	}
	want := serial()

	const parallel = 6
	got := make([]float64, parallel)
	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := DefaultConfig()
			cfg.SampleSize = 50
			cfg.Seed = 21
			sys, err := NewSystem(mapreduce.NewEngine(), cfg)
			if err != nil {
				t.Error(err)
				return
			}
			res, err := Run(sys, sumQuery(), data, nil)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = res.Sensitivity[0]
		}(i)
	}
	wg.Wait()
	for i, v := range got {
		if v != want {
			t.Fatalf("parallel run %d sensitivity %v != serial %v", i, v, want)
		}
	}
}
