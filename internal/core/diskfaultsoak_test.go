package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"upa/internal/chaos"
	"upa/internal/mapreduce"
)

// diskFaultKinds enumerates the storage failure modes the disk-fault soak
// sweeps, one at a time to isolate each recovery path and then combined to
// exercise their interactions. Rates are per (file, attempt) fate draws; the
// engine's six-attempt soak retry policy makes exhaustion astronomically
// unlikely while every kind still lands many times per sweep.
var diskFaultKinds = []struct {
	name string
	set  func(p *chaos.Policy)
}{
	{"read-error", func(p *chaos.Policy) { p.DiskReadErrorRate = 0.2 }},
	{"write-error", func(p *chaos.Policy) { p.DiskWriteErrorRate = 0.2 }},
	{"enospc", func(p *chaos.Policy) { p.DiskENOSPCRate = 0.15 }},
	{"torn-write", func(p *chaos.Policy) { p.DiskTornWriteRate = 0.2 }},
	{"corruption", func(p *chaos.Policy) { p.DiskCorruptionRate = 0.2 }},
	{"rename-error", func(p *chaos.Policy) { p.DiskRenameErrorRate = 0.2 }},
	{"combined", func(p *chaos.Policy) {
		p.DiskReadErrorRate = 0.08
		p.DiskWriteErrorRate = 0.08
		p.DiskENOSPCRate = 0.05
		p.DiskTornWriteRate = 0.08
		p.DiskCorruptionRate = 0.08
		p.DiskRenameErrorRate = 0.08
	}},
}

// soakDiskRun is soakRun plus the storage hygiene checks: before close, no
// orphaned .tmp file may sit in the spill directory (every failed write
// cleans up after itself); after close, the directory itself must be gone.
func soakDiskRun(t *testing.T, inj *chaos.Injector, budget int64) ([]releaseOutputs, float64, mapreduce.MetricsSnapshot) {
	t.Helper()
	data := seqData(400)
	domain := uniformDomain(0, 400)
	cfg := DefaultConfig()
	cfg.SampleSize = 40
	eng := mapreduce.NewEngine(
		mapreduce.WithRetryPolicy(soakRetryPolicy()),
		mapreduce.WithChaos(inj),
		mapreduce.WithMemoryBudget(budget))
	closed := false
	defer func() {
		if !closed {
			eng.Close()
		}
	}()
	sys, err := NewSystem(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var outs []releaseOutputs
	for _, q := range []Query[float64]{countQuery(), sumQuery()} {
		res, err := Run(sys, q, data, domain)
		if err != nil {
			t.Fatalf("release %q under disk faults: %v", q.Name, err)
		}
		outs = append(outs, outputsOf(res))
	}
	eps, m := sys.EpsilonSpent(), eng.Metrics()

	dir := eng.SpillDir()
	if dir != "" {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read spill dir %s: %v", dir, err)
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".tmp") {
				t.Errorf("orphaned partial spill file %s", filepath.Join(dir, e.Name()))
			}
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("engine close under disk faults: %v", err)
	}
	closed = true
	if dir != "" {
		if _, err := os.Stat(dir); !os.IsNotExist(err) {
			t.Errorf("spill dir %s survived Close (stat err: %v)", dir, err)
		}
	}
	return outs, eps, m
}

// TestChaosSoakDiskFaultInvariant is the storage-fault robustness gate: for
// every soak seed and every disk failure mode — injected read errors, write
// errors, ENOSPC, torn writes, in-flight corruption, rename failures, and
// all of them combined — a budget-forced run must release byte-identically
// to the fault-free in-memory run, spend exactly the same ε, run exactly the
// same tasks, detect (never silently decode) every corruption it reads, and
// leave no orphaned temp files behind. Set UPA_DISK_SOAK_DIR to write the
// per-(seed, kind) fault/recovery counters as a CSV artifact.
func TestChaosSoakDiskFaultInvariant(t *testing.T) {
	budget := soakSpillBudget(t)
	cleanOuts, cleanEps, cleanM := soakRun(t, nil, -1)
	cleanJSON, err := json.Marshal(cleanOuts)
	if err != nil {
		t.Fatal(err)
	}

	var csv strings.Builder
	csv.WriteString("seed,kind,disk_write_errors,disk_enospcs,disk_torn_writes,disk_rename_errors,disk_read_errors,disk_corruptions,corruptions_detected,recomputes,write_retries,fallbacks_in_memory\n")
	injectedByKind := make(map[string]int64, len(diskFaultKinds))
	detectedByKind := make(map[string]int64, len(diskFaultKinds))
	corruptionsInjected, corruptionsDetected := int64(0), int64(0)
	for _, seed := range soakSeeds(t) {
		for _, k := range diskFaultKinds {
			policy := chaos.Policy{Seed: seed}
			k.set(&policy)
			inj := chaos.New(policy)
			outs, eps, m := soakDiskRun(t, inj, budget)
			faultyJSON, err := json.Marshal(outs)
			if err != nil {
				t.Fatal(err)
			}
			if string(faultyJSON) != string(cleanJSON) {
				t.Errorf("seed %d %s: release outputs diverged under disk faults\n clean: %s\nfaulty: %s",
					seed, k.name, cleanJSON, faultyJSON)
				continue
			}
			if eps != cleanEps {
				t.Errorf("seed %d %s: ε ledger %v under disk faults, %v clean — recovery double-spent ε",
					seed, k.name, eps, cleanEps)
			}
			if m.TasksRun != cleanM.TasksRun {
				t.Errorf("seed %d %s: TasksRun = %d under disk faults, %d clean",
					seed, k.name, m.TasksRun, cleanM.TasksRun)
			}
			if m.SpilledBytes == 0 && m.SpillFallbacksInMemory == 0 {
				t.Errorf("seed %d %s: run exercised neither the spill path nor its fallback", seed, k.name)
			}
			cs := inj.Snapshot()
			injected := cs.DiskWriteErrors + cs.DiskENOSPCs + cs.DiskTornWrites +
				cs.DiskRenameErrors + cs.DiskReadErrors + cs.DiskCorruptions
			injectedByKind[k.name] += injected
			detectedByKind[k.name] += m.SpillCorruptionsDetected
			corruptionsInjected += cs.DiskCorruptions
			corruptionsDetected += m.SpillCorruptionsDetected
			fmt.Fprintf(&csv, "%d,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
				seed, k.name, cs.DiskWriteErrors, cs.DiskENOSPCs, cs.DiskTornWrites,
				cs.DiskRenameErrors, cs.DiskReadErrors, cs.DiskCorruptions,
				m.SpillCorruptionsDetected, m.SpillRecomputes, m.SpillWriteRetries, m.SpillFallbacksInMemory)
		}
	}

	// A soak that injected nothing proves nothing; every kind must have
	// landed somewhere across the sweep.
	for _, k := range diskFaultKinds {
		if injectedByKind[k.name] == 0 {
			t.Errorf("fault kind %s never landed across the sweep; raise its rate", k.name)
		}
	}
	// Corruption that is read must be detected, never silently decoded; the
	// detection counter can legitimately run below the injection counter only
	// because some corrupted bytes are never read back (partial merges), so
	// the assertion is aggregate: the sweep injected plenty, detection fired.
	if corruptionsInjected > 0 && corruptionsDetected == 0 {
		t.Errorf("%d corruptions injected across the sweep, none detected", corruptionsInjected)
	}

	if dir := os.Getenv("UPA_DISK_SOAK_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		out := filepath.Join(dir, "disk-faults.csv")
		if err := os.WriteFile(out, []byte(csv.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote disk-fault counters to %s", out)
	}
}
