package upa

import (
	"fmt"
	"sort"

	"upa/internal/dpop"
	"upa/internal/mapreduce"
	"upa/internal/stats"
)

// KeyedQuery is a per-key aggregation ("GROUP BY key"): every record
// contributes Value(record) to the group Key(record), and groups combine
// contributions with Reduce (addition when nil; must be commutative and
// associative).
//
// Because each record contributes to exactly one group, the groups form
// disjoint sub-datasets and the release satisfies iDP by parallel
// composition: one ε covers the whole keyed output.
type KeyedQuery[T any, K comparable] struct {
	Name   string
	Key    func(T) K
	Value  func(T) float64
	Reduce func(float64, float64) float64
}

func (q KeyedQuery[T, K]) validate() error {
	if q.Name == "" {
		return fmt.Errorf("upa: keyed query needs a name")
	}
	if q.Key == nil || q.Value == nil {
		return fmt.Errorf("upa: keyed query %q needs Key and Value functions", q.Name)
	}
	return nil
}

// KeyedValue is one group of a keyed release.
type KeyedValue[K comparable] struct {
	Key K
	// Output is the noisy group value; Sensitivity the local sensitivity
	// the noise was scaled to.
	Output      float64
	Sensitivity float64
}

// KeyedResult is one per-key iDP release.
type KeyedResult[K comparable] struct {
	Query string
	// Groups holds one noisy value per key, in deterministic order.
	Groups []KeyedValue[K]
	// SampleSize is the effective number of sampled differing records;
	// GlobalSensitivity the largest per-record influence observed across
	// all groups (the fallback scale for groups no sample touched).
	SampleSize        int
	GlobalSensitivity float64
}

// ReleaseByKey releases a keyed aggregation under iDP: UPA samples n
// differing records, computes every group's value with the sampled records'
// contributions tracked individually (the reduceByKeyDP operator of Table
// I), infers a per-group local sensitivity from the sampled neighbouring
// outputs — falling back to the largest observed influence for groups the
// sample missed — and perturbs each group with Laplace noise at the
// session's ε (parallel composition across disjoint groups).
//
// domain, if non-nil, samples additional records from the record domain so
// addition neighbours are covered.
func ReleaseByKey[T any, K comparable](s *Session, q KeyedQuery[T, K], data []T, domain func(*RNG) T) (*KeyedResult[K], error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	if len(data) < 2 {
		return nil, fmt.Errorf("upa: keyed query %q needs at least two records", q.Name)
	}
	eps := s.sys.Config().Epsilon
	if err := s.debit(eps); err != nil {
		return nil, err
	}
	res, err := releaseByKey(s, q, data, domain)
	if err != nil {
		s.credit(eps)
		return nil, err
	}
	return res, nil
}

func releaseByKey[T any, K comparable](s *Session, q KeyedQuery[T, K], data []T, domain func(*RNG) T) (*KeyedResult[K], error) {
	reduce := q.Reduce
	if reduce == nil {
		reduce = func(a, b float64) float64 { return a + b }
	}
	pairs := make([]mapreduce.Pair[K, float64], len(data))
	for i, rec := range data {
		pairs[i] = mapreduce.Pair[K, float64]{Key: q.Key(rec), Value: q.Value(rec)}
	}
	cfg := s.sys.Config()
	sampleRNG := stats.NewRNG(cfg.Seed).Split(0x6B65)
	d, err := dpop.DPReadKV(s.eng, pairs, cfg.SampleSize, sampleRNG)
	if err != nil {
		return nil, err
	}
	kv, err := dpop.ReduceByKeyDP(d, reduce)
	if err != nil {
		return nil, err
	}

	// Per-group sensitivity from the sampled removal neighbours; the
	// global maximum backs groups the sample missed.
	totals := make(map[K]float64, len(kv.Result))
	order := make([]K, 0, len(kv.Result))
	for _, p := range kv.Result {
		totals[p.Key] = p.Value
		order = append(order, p.Key)
	}
	perKey := make(map[K]float64)
	global := 0.0
	observe := func(k K, neighbour float64, present bool) {
		base := totals[k]
		diff := base - neighbour
		if !present {
			diff = base
		}
		if diff < 0 {
			diff = -diff
		}
		if diff > perKey[k] {
			perKey[k] = diff
		}
		if diff > global {
			global = diff
		}
	}
	for _, nb := range kv.Neighbours {
		observe(nb.Key, nb.Value, nb.Present)
	}
	// Addition neighbours: a fresh record adds its contribution to its key.
	if domain != nil {
		addRNG := stats.NewRNG(cfg.Seed).Split(0x6B66)
		for i := 0; i < d.SampleSize(); i++ {
			rec := domain(addRNG)
			k := q.Key(rec)
			v := q.Value(rec)
			base, ok := totals[k]
			neighbour := v
			if ok {
				neighbour = reduce(base, v)
			}
			observe(k, neighbour, true)
		}
	}

	out := &KeyedResult[K]{
		Query:             q.Name,
		SampleSize:        d.SampleSize(),
		GlobalSensitivity: global,
		Groups:            make([]KeyedValue[K], 0, len(order)),
	}
	noiseRNG := stats.NewRNG(cfg.Seed).Split(0x6B67)
	mech, err := stats.NewMechanism(cfg.Epsilon, noiseRNG)
	if err != nil {
		return nil, err
	}
	for _, k := range order {
		sens, ok := perKey[k]
		if !ok || sens == 0 {
			sens = global
		}
		out.Groups = append(out.Groups, KeyedValue[K]{
			Key:         k,
			Output:      mech.Perturb(totals[k], sens),
			Sensitivity: sens,
		})
	}
	// Deterministic order already guaranteed by ReduceByKeyDP; keep it
	// stable across Go versions by sorting on the rendered key.
	sort.SliceStable(out.Groups, func(i, j int) bool {
		return fmt.Sprint(out.Groups[i].Key) < fmt.Sprint(out.Groups[j].Key)
	})
	return out, nil
}
