package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden JSON-shape files")

// shapeOf reduces a decoded JSON value to its type shape: objects keep their
// keys (sorted) with the shapes of their values, arrays keep their first
// element's shape, and scalars collapse to their JSON type. Two responses
// with the same shape are interchangeable to a typed client, so pinning the
// shape in a golden file catches schema drift without pinning values.
func shapeOf(v any) string {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fields := make([]string, 0, len(keys))
		for _, k := range keys {
			fields = append(fields, fmt.Sprintf("%s: %s", k, shapeOf(x[k])))
		}
		return "{" + strings.Join(fields, ", ") + "}"
	case []any:
		if len(x) == 0 {
			return "array<empty>"
		}
		return "array<" + shapeOf(x[0]) + ">"
	case string:
		return "string"
	case float64:
		return "number"
	case bool:
		return "bool"
	case nil:
		return "null"
	default:
		return fmt.Sprintf("unknown(%T)", v)
	}
}

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != strings.TrimRight(string(want), "\n") {
		t.Errorf("schema drift for %s:\n got: %s\nwant: %s\n(run go test -update if intentional)",
			name, got, strings.TrimRight(string(want), "\n"))
	}
}

// TestMetricsShapeGolden pins the GET /metrics schema.
func TestMetricsShapeGolden(t *testing.T) {
	h := testServer(t, "").routes()
	if rec, _ := doJSON(t, h, http.MethodPost, "/release", `{"query":"TPCH6"}`); rec.Code != http.StatusOK {
		t.Fatal("release failed")
	}
	// A served query populates the per-tenant metrics, so the golden pins
	// their schema too (testServer registers the default "public" tenant).
	if rec, body := doJSON(t, h, http.MethodPost, "/query",
		`{"tenant":"public","user":"alice","plan":"tpch1","epsilon":0.25,"seed":11}`); rec.Code != http.StatusOK {
		t.Fatalf("query failed: %d %v", rec.Code, body)
	}
	rec, _ := doJSON(t, h, http.MethodGet, "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var v any
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics_shape", shapeOf(v))
}

// TestJobsShapeGolden pins the GET /jobs schema, including the per-stage
// span fields the cost model and any dashboard depend on.
func TestJobsShapeGolden(t *testing.T) {
	h := testServer(t, "").routes()
	if rec, _ := doJSON(t, h, http.MethodPost, "/release", `{"query":"TPCH6"}`); rec.Code != http.StatusOK {
		t.Fatal("release failed")
	}
	rec, _ := doJSON(t, h, http.MethodGet, "/jobs", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var v any
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "jobs_shape", shapeOf(v))

	// Structural invariants the shape alone cannot pin: deps must always be
	// a JSON array (never null), and every stage must be present.
	var body struct {
		Jobs []struct {
			ID     uint64 `json:"id"`
			Query  string `json:"query"`
			Stages []struct {
				Stage string    `json:"stage"`
				Deps  *[]string `json:"deps"`
				SimUS float64   `json:"simUs"`
			} `json:"stages"`
			CriticalPath    []string `json:"criticalPath"`
			SimPipelinedUS  float64  `json:"simPipelinedUs"`
			SimSequentialUS float64  `json:"simSequentialUs"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Jobs) != 1 {
		t.Fatalf("jobs = %d, want 1", len(body.Jobs))
	}
	job := body.Jobs[0]
	if job.Query != "TPCH6" || job.ID != 1 {
		t.Errorf("job header = %+v", job)
	}
	if len(job.Stages) < 8 {
		t.Errorf("only %d stages recorded", len(job.Stages))
	}
	for _, s := range job.Stages {
		if s.Deps == nil {
			t.Errorf("stage %s serialized deps as null", s.Stage)
		}
	}
	if len(job.CriticalPath) == 0 {
		t.Error("empty critical path")
	}
	if job.SimPipelinedUS <= 0 || job.SimSequentialUS < job.SimPipelinedUS {
		t.Errorf("plan costs: sequential %v, pipelined %v", job.SimSequentialUS, job.SimPipelinedUS)
	}
}

// TestJobLogEviction bounds the job log at jobLogCap records.
func TestJobLogEviction(t *testing.T) {
	srv := testServer(t, "")
	h := srv.routes()
	queriesList := []string{"TPCH1", "TPCH6", "TPCH11", "TPCH13"}
	for i := 0; i < jobLogCap+4; i++ {
		q := queriesList[i%len(queriesList)]
		if rec, _ := doJSON(t, h, http.MethodPost, "/release", `{"query":"`+q+`"}`); rec.Code != http.StatusOK {
			t.Fatalf("release %d failed", i)
		}
	}
	_, body := doJSON(t, h, http.MethodGet, "/jobs", "")
	jobs, ok := body["jobs"].([]any)
	if !ok || len(jobs) != jobLogCap {
		t.Fatalf("job log holds %d records, want %d", len(jobs), jobLogCap)
	}
	// Newest first: the first record is the last release.
	first := jobs[0].(map[string]any)
	if got := first["id"].(float64); int(got) != jobLogCap+4 {
		t.Errorf("newest job id = %v, want %d", got, jobLogCap+4)
	}
}
