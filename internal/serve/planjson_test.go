package serve

import (
	"strings"
	"testing"

	"upa/internal/mapreduce"
	"upa/internal/sql"
)

func testTables() map[string]*sql.ScanPlan {
	people := sql.Scan("people",
		sql.Schema{{Name: "age", Kind: sql.KindInt}, {Name: "city", Kind: sql.KindString}},
		[]sql.Row{
			{sql.Int(31), sql.Str("ny")},
			{sql.Int(22), sql.Str("sf")},
			{sql.Int(45), sql.Str("ny")},
			{sql.Int(28), sql.Str("la")},
		})
	visits := sql.Scan("visits",
		sql.Schema{{Name: "town", Kind: sql.KindString}, {Name: "week", Kind: sql.KindInt}},
		[]sql.Row{
			{sql.Str("ny"), sql.Int(1)},
			{sql.Str("ny"), sql.Int(2)},
			{sql.Str("sf"), sql.Int(1)},
			{sql.Str("la"), sql.Int(2)},
			{sql.Str("la"), sql.Int(3)},
		})
	return map[string]*sql.ScanPlan{"people": people, "visits": visits}
}

// joinCountJSON counts (person, visit) pairs matched on city — a two-table
// plan, so requests must name the protected relation explicitly.
const joinCountJSON = `{
  "op": "aggregate",
  "aggs": [{"name": "n", "func": "count"}],
  "input": {
    "op": "join",
    "left": {"op": "scan", "table": "people"},
    "leftKey": "city",
    "right": {"op": "scan", "table": "visits"},
    "rightKey": "town"
  }
}`

const countOver30JSON = `{
  "op": "aggregate",
  "aggs": [{"name": "n", "func": "count"}],
  "input": {
    "op": "filter",
    "pred": {"op": "gt", "left": {"col": "age"}, "right": {"int": 30}},
    "input": {"op": "scan", "table": "people"}
  }
}`

func TestDecodePlanMatchesConstructedPlan(t *testing.T) {
	tables := testTables()
	decoded, err := DecodePlan([]byte(countOver30JSON), tables)
	if err != nil {
		t.Fatal(err)
	}
	built := sql.GroupBy(
		sql.Where(tables["people"], sql.Gt(sql.Col("age"), sql.Lit(sql.Int(30)))),
		nil,
		sql.AggSpec{Name: "n", Func: sql.AggCount},
	)
	if got, want := sql.Fingerprint(decoded), sql.Fingerprint(built); got != want {
		t.Fatalf("decoded plan fingerprint %s != constructed %s", got, want)
	}
}

func TestDecodePlanOperatorsRoundTrip(t *testing.T) {
	tables := testTables()
	wire := `{
	  "op": "limit", "n": 2,
	  "input": {
	    "op": "orderby", "keys": [{"column": "age", "desc": true}],
	    "input": {
	      "op": "distinct",
	      "input": {
	        "op": "project",
	        "exprs": [{"name": "age", "expr": {"col": "age"}}],
	        "input": {"op": "scan", "table": "people"}
	      }
	    }
	  }
	}`
	plan, err := DecodePlan([]byte(wire), tables)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := sql.Execute(mapreduce.NewEngine(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
}

func TestDecodePlanErrors(t *testing.T) {
	tables := testTables()
	cases := map[string]struct {
		wire string
		want string
	}{
		"unknown table":    {`{"op":"scan","table":"nope"}`, "unknown table"},
		"unknown operator": {`{"op":"pivot"}`, "unknown plan operator"},
		"missing op":       {`{"table":"people"}`, "missing \"op\""},
		"unknown agg":      {`{"op":"aggregate","aggs":[{"name":"n","func":"median"}],"input":{"op":"scan","table":"people"}}`, "unknown aggregate"},
		"unknown expr op":  {`{"op":"filter","pred":{"op":"xor"},"input":{"op":"scan","table":"people"}}`, "unknown expression operator"},
		"empty expr":       {`{"op":"filter","pred":{},"input":{"op":"scan","table":"people"}}`, "neither a column"},
		"malformed JSON":   {`{"op":`, "malformed plan JSON"},
		"join sans keys":   {`{"op":"join","left":{"op":"scan","table":"people"},"right":{"op":"scan","table":"people"}}`, "leftKey"},
	}
	for name, tc := range cases {
		if _, err := DecodePlan([]byte(tc.wire), tables); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", name, err, tc.want)
		}
	}
}
