package mapreduce

import (
	"context"
	"errors"
	"testing"
)

// TestCancelledContextStopsScheduling cancels the context from inside the
// first task: a single-worker engine must not claim any further task, so a
// cancelled job stops scheduling instead of running to completion.
func TestCancelledContextStopsScheduling(t *testing.T) {
	eng := NewEngine(WithWorkers(1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran := 0
	err := eng.runTasks(ctx, "test:cancel", 50, func(_ context.Context, i int) error {
		ran++
		if i == 0 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("runTasks = %v, want context.Canceled", err)
	}
	if ran != 1 {
		t.Fatalf("tasks run after cancellation: %d, want 1", ran)
	}
}

// TestCancelledContextStopsRetries cancels during a fault-retry loop: the
// attempt budget must not be spent on a dead job.
func TestCancelledContextStopsRetries(t *testing.T) {
	eng := NewEngine(WithWorkers(1), WithMaxAttempts(100))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng.InjectFaults(100)
	cancel()
	err := eng.runTasks(ctx, "test:cancel-retries", 1, func(context.Context, int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("runTasks = %v, want context.Canceled", err)
	}
	if got := eng.Metrics().TaskAttempts; got != 0 {
		t.Fatalf("attempts under cancelled context = %d, want 0", got)
	}
}

// TestActionContextVariants exercises cancellation through the public
// dataset actions.
func TestActionContextVariants(t *testing.T) {
	eng := NewEngine(WithWorkers(2))
	ds, err := FromSlice(eng, intsUpTo(100), 10)
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ds.CollectCtx(cancelled); !errors.Is(err, context.Canceled) {
		t.Errorf("CollectCtx = %v, want context.Canceled", err)
	}
	if _, err := ds.CountCtx(cancelled); !errors.Is(err, context.Canceled) {
		t.Errorf("CountCtx = %v, want context.Canceled", err)
	}
	if _, err := ReduceCtx(cancelled, ds, func(a, b int) int { return a + b }); !errors.Is(err, context.Canceled) {
		t.Errorf("ReduceCtx = %v, want context.Canceled", err)
	}
	if _, err := AggregateCtx(cancelled, ds, 0,
		func(a, v int) int { return a + v },
		func(a, b int) int { return a + b }); !errors.Is(err, context.Canceled) {
		t.Errorf("AggregateCtx = %v, want context.Canceled", err)
	}

	// A live context leaves the actions untouched.
	sum, err := ReduceCtx(context.Background(), ds, func(a, b int) int { return a + b })
	if err != nil || sum != 4950 {
		t.Fatalf("ReduceCtx live = %v, %v, want 4950", sum, err)
	}
}
