package sql

import (
	"fmt"
	"math"

	"upa/internal/mapreduce"
)

// Execute compiles a logical plan onto the engine and runs it: scans become
// partitioned datasets, filters/projections narrow transformations, joins
// engine hash joins (with their shuffle accounting), and aggregations
// ReduceByKey jobs. It returns the result rows and their schema.
//
// Every plan is first rewritten by Optimize, so no caller pays for work a
// rule can eliminate (pushdown, pruning, join ordering/sizing — see
// optimize.go), and then lowered through the physical layer (physical.go):
// vectorizable Filter/Project/Aggregate chains over a scan run columnar via
// colbatch kernels, everything else row-at-a-time. Both choices produce
// byte-identical results; use ExecuteRowOnly to force the row path and
// ExecuteRaw to run the tree as written.
func Execute(eng *mapreduce.Engine, plan Plan) ([]Row, Schema, error) {
	optimized, _ := Optimize(plan)
	return executePlan(eng, plan, optimized, true)
}

// ExecuteRowOnly runs the optimized plan entirely row-at-a-time — the
// pre-physical-layer behaviour. It is the measurement baseline for the
// columnar path: equivalence tests and the bench columnar sweep compare
// Execute against ExecuteRowOnly on the same plan.
func ExecuteRowOnly(eng *mapreduce.Engine, plan Plan) ([]Row, Schema, error) {
	optimized, _ := Optimize(plan)
	return executePlan(eng, plan, optimized, false)
}

// ExecuteRaw compiles the plan tree exactly as the caller built it, with no
// optimizer rewrites and no columnar execution. It exists as the
// measurement baseline: equivalence tests and the bench "optimizer"
// experiment compare Execute against ExecuteRaw on the same plan.
func ExecuteRaw(eng *mapreduce.Engine, plan Plan) ([]Row, Schema, error) {
	return executePlan(eng, plan, plan, false)
}

// executePlan runs compiled, reporting schema and errors against declared
// (the tree the caller built).
func executePlan(eng *mapreduce.Engine, declared, compiled Plan, columnar bool) ([]Row, Schema, error) {
	schema, err := declared.Schema()
	if err != nil {
		return nil, nil, err
	}
	c := &compiler{eng: eng, columnar: columnar}
	ds, err := c.compile(compiled)
	if err != nil {
		return nil, nil, err
	}
	rows, err := ds.Collect()
	if err != nil {
		return nil, nil, err
	}
	return rows, schema, nil
}

// ExecuteCount is a convenience for global-count plans: it returns the
// single integer of a one-row, one-column result.
func ExecuteCount(eng *mapreduce.Engine, plan Plan) (int64, error) {
	rows, schema, err := Execute(eng, plan)
	if err != nil {
		return 0, err
	}
	if len(rows) != 1 || len(schema) != 1 {
		return 0, fmt.Errorf("sql: plan is not a global single-aggregate (got %d rows × %d cols)",
			len(rows), len(schema))
	}
	v, ok := rows[0][0].AsInt()
	if !ok {
		f, okF := rows[0][0].AsFloat()
		if !okF {
			return 0, fmt.Errorf("sql: count result is %s", rows[0][0].Kind())
		}
		v = int64(f)
	}
	return v, nil
}

// compiler lowers logical plans onto the engine. When columnar is set it
// routes vectorizable subtrees (see physical.go for the shared eligibility
// predicates) through the fused batch pipeline in colexec.go; otherwise
// everything compiles row-at-a-time.
type compiler struct {
	eng      *mapreduce.Engine
	columnar bool
}

// scanParts picks the partition count for a scan — shared by the row and
// columnar paths so both produce identically-partitioned datasets (which in
// turn keeps shuffle merge order, and therefore float folds, identical).
func scanParts(eng *mapreduce.Engine, p *ScanPlan) int {
	parts := eng.Workers()
	if parts > len(p.Rows) {
		parts = len(p.Rows)
	}
	if parts < 1 {
		parts = 1
	}
	return parts
}

func (c *compiler) compile(plan Plan) (*mapreduce.Dataset[Row], error) {
	eng := c.eng
	if c.columnar {
		switch p := plan.(type) {
		case *AggregatePlan:
			if vectorizableAggregate(p) {
				return c.compileColumnarAggregate(p)
			}
		case *FilterPlan, *ProjectPlan:
			if vectorizableChain(plan) {
				return c.compileColumnarChain(plan)
			}
		}
	}
	switch p := plan.(type) {
	case *ScanPlan:
		return mapreduce.FromSlice(eng, p.Rows, scanParts(eng, p))

	case *FilterPlan:
		in, err := p.Input.Schema()
		if err != nil {
			return nil, err
		}
		pred, kind, err := p.Pred.bind(in)
		if err != nil {
			return nil, err
		}
		if kind != KindBool {
			return nil, fmt.Errorf("sql: filter predicate is %s, want bool", kind)
		}
		ds, err := c.compile(p.Input)
		if err != nil {
			return nil, err
		}
		// Predicate errors surface via MapPartitions rather than Filter so
		// they abort the job instead of being swallowed.
		return mapreduce.MapPartitions(ds, func(_ int, rows []Row) ([]Row, error) {
			out := make([]Row, 0, len(rows))
			for _, r := range rows {
				v, err := pred(r)
				if err != nil {
					return nil, err
				}
				if b, _ := v.AsBool(); b {
					out = append(out, r)
				}
			}
			return out, nil
		}), nil

	case *ProjectPlan:
		in, err := p.Input.Schema()
		if err != nil {
			return nil, err
		}
		bound := make([]boundExpr, len(p.Exprs))
		for i, ne := range p.Exprs {
			b, _, err := ne.Expr.bind(in)
			if err != nil {
				return nil, err
			}
			bound[i] = b
		}
		ds, err := c.compile(p.Input)
		if err != nil {
			return nil, err
		}
		return mapreduce.MapPartitions(ds, func(_ int, rows []Row) ([]Row, error) {
			out := make([]Row, len(rows))
			for ri, r := range rows {
				row := make(Row, len(bound))
				for i, b := range bound {
					v, err := b(r)
					if err != nil {
						return nil, err
					}
					row[i] = v
				}
				out[ri] = row
			}
			return out, nil
		}), nil

	case *JoinPlan:
		ls, err := p.Left.Schema()
		if err != nil {
			return nil, err
		}
		rs, err := p.Right.Schema()
		if err != nil {
			return nil, err
		}
		li, err := ls.IndexOf(p.LeftKey)
		if err != nil {
			return nil, err
		}
		ri, err := rs.IndexOf(p.RightKey)
		if err != nil {
			return nil, err
		}
		left, err := c.compile(p.Left)
		if err != nil {
			return nil, err
		}
		right, err := c.compile(p.Right)
		if err != nil {
			return nil, err
		}
		keyedLeft := mapreduce.KeyBy(left, func(r Row) Value { return r[li] })
		keyedRight := mapreduce.KeyBy(right, func(r Row) Value { return r[ri] })
		joined, err := mapreduce.Join(keyedLeft, keyedRight)
		if err != nil {
			return nil, err
		}
		return mapreduce.Map(joined, func(p mapreduce.Pair[Value, mapreduce.Joined[Row, Row]]) Row {
			out := make(Row, 0, len(p.Value.Left)+len(p.Value.Right))
			out = append(out, p.Value.Left...)
			out = append(out, p.Value.Right...)
			return out
		}), nil

	case *AggregatePlan:
		return c.compileAggregate(p)

	case *OrderByPlan:
		return c.compileOrderBy(p)

	case *DistinctPlan:
		return c.compileDistinct(p)

	case *LimitPlan:
		ds, err := c.compile(p.Input)
		if err != nil {
			return nil, err
		}
		if p.N < 0 {
			return nil, fmt.Errorf("sql: negative limit %d", p.N)
		}
		n := p.N
		head := func(_ int, rows []Row) ([]Row, error) {
			if len(rows) > n {
				rows = rows[:n]
			}
			out := make([]Row, len(rows))
			copy(out, rows)
			return out, nil
		}
		// The global prefix of N rows draws at most N from each partition,
		// so take a per-partition head first and repartition only the
		// survivors: the single-partition shuffle moves at most N × parts
		// rows instead of the whole dataset.
		single, err := mapreduce.Repartition(mapreduce.MapPartitions(ds, head), 1)
		if err != nil {
			return nil, err
		}
		return mapreduce.MapPartitions(single, head), nil

	default:
		return nil, fmt.Errorf("sql: unknown plan node %T", plan)
	}
}

// aggState is the mergeable accumulator of one group: one slot per AggSpec.
// Fields are exported so the accumulator survives the engine's gob-framed
// spill files when a shuffle exceeds the memory budget.
type aggState struct {
	Count int64
	Sums  []float64
	Mins  []float64
	Maxs  []float64
}

func (c *compiler) compileAggregate(p *AggregatePlan) (*mapreduce.Dataset[Row], error) {
	eng := c.eng
	in, err := p.Input.Schema()
	if err != nil {
		return nil, err
	}
	if len(p.Aggs) == 0 {
		return nil, fmt.Errorf("sql: aggregate without aggregate functions")
	}
	groupIdx := make([]int, len(p.GroupBy))
	for i, g := range p.GroupBy {
		idx, err := in.IndexOf(g)
		if err != nil {
			return nil, err
		}
		groupIdx[i] = idx
	}
	args := make([]boundExpr, len(p.Aggs))
	for i, a := range p.Aggs {
		if a.Func == AggCount {
			continue
		}
		if a.Arg == nil {
			return nil, fmt.Errorf("sql: aggregate %s(%s) needs an argument", a.Func, a.Name)
		}
		b, kind, err := a.Arg.bind(in)
		if err != nil {
			return nil, err
		}
		if !numeric(kind) {
			return nil, fmt.Errorf("sql: %s over %s argument", a.Func, kind)
		}
		args[i] = b
	}

	ds, err := c.compile(p.Input)
	if err != nil {
		return nil, err
	}

	nAggs := len(p.Aggs)
	toState := func(r Row) (mapreduce.Pair[string, aggState], error) {
		st := aggState{
			Count: 1,
			Sums:  make([]float64, nAggs),
			Mins:  make([]float64, nAggs),
			Maxs:  make([]float64, nAggs),
		}
		for i, b := range args {
			if b == nil {
				continue
			}
			v, err := b(r)
			if err != nil {
				return mapreduce.Pair[string, aggState]{}, err
			}
			f, _ := v.AsFloat()
			st.Sums[i] = f
			st.Mins[i] = f
			st.Maxs[i] = f
		}
		key := ""
		for _, gi := range groupIdx {
			key += r[gi].String() + "\x1f"
		}
		return mapreduce.Pair[string, aggState]{Key: key, Value: st}, nil
	}

	// Keep the group-key row values for output reconstruction.
	type keyed struct {
		Pair mapreduce.Pair[string, aggState]
		Keys Row
	}
	keyedDS := mapreduce.MapPartitions(ds, func(_ int, rows []Row) ([]keyed, error) {
		out := make([]keyed, len(rows))
		for i, r := range rows {
			pair, err := toState(r)
			if err != nil {
				return nil, err
			}
			keys := make(Row, len(groupIdx))
			for j, gi := range groupIdx {
				keys[j] = r[gi]
			}
			out[i] = keyed{Pair: pair, Keys: keys}
		}
		return out, nil
	})

	pairs := mapreduce.Map(keyedDS, func(k keyed) mapreduce.Pair[string, groupAcc] {
		return mapreduce.Pair[string, groupAcc]{
			Key:   k.Pair.Key,
			Value: groupAcc{State: k.Pair.Value, Keys: k.Keys},
		}
	})
	return finalizeAggregate(eng, pairs, p.Aggs, len(p.GroupBy) == 0)
}

// finalizeAggregate merges per-group accumulators and renders output rows.
// It is shared by the row and columnar aggregate paths: both feed groupAcc
// pairs through the same ReduceByKey(mergeGroups) and the same rendering,
// which is what makes the two paths byte-identical downstream of the
// partial aggregation.
func finalizeAggregate(eng *mapreduce.Engine, pairs *mapreduce.Dataset[mapreduce.Pair[string, groupAcc]], specs []AggSpec, global bool) (*mapreduce.Dataset[Row], error) {
	merged := mapreduce.ReduceByKey(pairs, mergeGroups)

	out := mapreduce.Map(merged, func(pr mapreduce.Pair[string, groupAcc]) Row {
		st := pr.Value.State
		row := make(Row, 0, len(pr.Value.Keys)+len(specs))
		row = append(row, pr.Value.Keys...)
		for i, a := range specs {
			switch a.Func {
			case AggCount:
				row = append(row, Int(st.Count))
			case AggSum:
				row = append(row, Float(st.Sums[i]))
			case AggAvg:
				if st.Count == 0 {
					row = append(row, Float(math.NaN()))
				} else {
					row = append(row, Float(st.Sums[i]/float64(st.Count)))
				}
			case AggMin:
				row = append(row, Float(st.Mins[i]))
			case AggMax:
				row = append(row, Float(st.Maxs[i]))
			}
		}
		return row
	})

	if global {
		return globalAggregateFallback(eng, out, specs)
	}
	return out, nil
}

// groupAcc carries the accumulator plus the group's key values.
type groupAcc struct {
	State aggState
	Keys  Row
}

// mergeGroups is the commutative, associative reducer over group
// accumulators.
func mergeGroups(a, b groupAcc) groupAcc {
	n := len(a.State.Sums)
	out := groupAcc{
		Keys: a.Keys,
		State: aggState{
			Count: a.State.Count + b.State.Count,
			Sums:  make([]float64, n),
			Mins:  make([]float64, n),
			Maxs:  make([]float64, n),
		},
	}
	for i := 0; i < n; i++ {
		out.State.Sums[i] = a.State.Sums[i] + b.State.Sums[i]
		out.State.Mins[i] = math.Min(a.State.Mins[i], b.State.Mins[i])
		out.State.Maxs[i] = math.Max(a.State.Maxs[i], b.State.Maxs[i])
	}
	return out
}

// globalAggregateFallback handles the empty-input global aggregate: SQL
// semantics return one row (count 0) even with no input rows.
func globalAggregateFallback(eng *mapreduce.Engine, out *mapreduce.Dataset[Row], specs []AggSpec) (*mapreduce.Dataset[Row], error) {
	rows, err := out.Collect()
	if err != nil {
		return nil, err
	}
	if len(rows) > 0 {
		return mapreduce.FromPartitions(eng, [][]Row{rows})
	}
	row := make(Row, len(specs))
	for i, a := range specs {
		if a.Func == AggCount {
			row[i] = Int(0)
		} else {
			row[i] = Float(0)
		}
	}
	return mapreduce.FromPartitions(eng, [][]Row{{row}})
}
