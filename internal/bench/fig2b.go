package bench

import (
	"fmt"
	"strings"
	"time"

	"upa/internal/mapreduce"
)

// OverheadRow is one bar of Figure 2(b): UPA's end-to-end execution time
// normalized to vanilla (no-DP) execution of the same query.
type OverheadRow struct {
	Query string
	// VanillaTime and UPATime are the per-release wall-clock times
	// (best of Reps runs, to suppress scheduler noise).
	VanillaTime, UPATime time.Duration
	// Normalized is UPATime/VanillaTime (the paper's Figure 2(b) y-axis);
	// Overhead is Normalized - 1 (the "77.6% average overhead" number).
	Normalized float64
	Overhead   float64
	// VanillaShuffles and UPAShuffles count shuffle rounds, the structural
	// driver of join-query overhead (§V-C, §VI-D).
	VanillaShuffles, UPAShuffles int64
}

// Fig2b regenerates Figure 2(b) with reps repetitions per measurement
// (minimum taken). reps < 1 defaults to 3.
func Fig2b(cfg Config, reps int) ([]OverheadRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if reps < 1 {
		reps = 3
	}
	w, err := cfg.Workload(0)
	if err != nil {
		return nil, err
	}
	rows := make([]OverheadRow, 0, 9)
	for _, r := range w.All() {
		row := OverheadRow{Query: r.Name()}

		for rep := 0; rep < reps; rep++ {
			eng := mapreduce.NewEngine()
			start := time.Now() //upa:allow(seededdeterminism) wall-clock measurement of real elapsed time, not a scheduling decision
			if _, err := r.RunVanilla(eng); err != nil {
				return nil, fmt.Errorf("bench: vanilla %s: %w", r.Name(), err)
			}
			elapsed := time.Since(start) //upa:allow(seededdeterminism) wall-clock measurement of real elapsed time, not a scheduling decision
			if rep == 0 || elapsed < row.VanillaTime {
				row.VanillaTime = elapsed
				row.VanillaShuffles = eng.Metrics().ShuffleRounds
			}
		}
		for rep := 0; rep < reps; rep++ {
			eng := mapreduce.NewEngine()
			sys, err := cfg.newSystem(eng, cfg.SampleSize)
			if err != nil {
				return nil, err
			}
			start := time.Now() //upa:allow(seededdeterminism) wall-clock measurement of real elapsed time, not a scheduling decision
			if _, err := r.RunUPA(sys); err != nil {
				return nil, fmt.Errorf("bench: UPA %s: %w", r.Name(), err)
			}
			elapsed := time.Since(start) //upa:allow(seededdeterminism) wall-clock measurement of real elapsed time, not a scheduling decision
			if rep == 0 || elapsed < row.UPATime {
				row.UPATime = elapsed
				row.UPAShuffles = eng.Metrics().ShuffleRounds
			}
		}
		if row.VanillaTime > 0 {
			row.Normalized = float64(row.UPATime) / float64(row.VanillaTime)
			row.Overhead = row.Normalized - 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig2b renders the overhead comparison as aligned text.
func RenderFig2b(rows []OverheadRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2(b): UPA execution time normalized to vanilla\n")
	fmt.Fprintf(&b, "%-18s %12s %12s %11s %10s %9s %9s\n",
		"Query", "vanilla", "UPA", "normalized", "overhead", "shuf(v)", "shuf(UPA)")
	var sum float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %12v %12v %10.2fx %9.1f%% %9d %9d\n",
			r.Query, r.VanillaTime.Round(time.Microsecond), r.UPATime.Round(time.Microsecond),
			r.Normalized, 100*r.Overhead, r.VanillaShuffles, r.UPAShuffles)
		sum += r.Overhead
	}
	fmt.Fprintf(&b, "mean overhead: %.1f%% (paper: 77.6%% on a 5-node cluster)\n",
		100*sum/float64(len(rows)))
	return b.String()
}
