package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"upa/internal/analyzers/analysis"
	"upa/internal/analyzers/upavet"
)

// moduleRoot is cmd/upa-vet -> repo root.
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestStandaloneCleanModule(t *testing.T) {
	if code := run([]string{moduleRoot(t)}); code != 0 {
		t.Fatalf("run(module root) = %d, want 0 (repo must be upa-vet clean)", code)
	}
}

func TestStandaloneRawReportsAnnotatedSites(t *testing.T) {
	if code := run([]string{"-raw", moduleRoot(t)}); code != 1 {
		t.Fatalf("run(-raw, module root) = %d, want 1 (annotated sites must fire without suppression)", code)
	}
}

func TestDriverProbes(t *testing.T) {
	if code := run([]string{"-flags"}); code != 0 {
		t.Fatalf("run(-flags) = %d, want 0", code)
	}
	if code := run([]string{"-V=full"}); code != 0 {
		t.Fatalf("run(-V=full) = %d, want 0", code)
	}
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// everything it wrote.
func captureStdout(t *testing.T, f func()) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan []byte)
	go func() {
		data, _ := io.ReadAll(r)
		done <- data
	}()
	f()
	w.Close()
	return <-done
}

// TestJSONOutput checks the machine-readable mode: every line on stdout is
// one JSONDiagnostic, on a clean tree every diagnostic is a suppressed
// (justified) finding, and the exit code stays 0 because nothing is
// unsuppressed.
func TestJSONOutput(t *testing.T) {
	var code int
	out := captureStdout(t, func() {
		code = run([]string{"-json", moduleRoot(t)})
	})
	if code != 0 {
		t.Fatalf("run(-json, module root) = %d, want 0", code)
	}
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var d upavet.JSONDiagnostic
		if err := json.Unmarshal(line, &d); err != nil {
			t.Fatalf("line %d is not a JSON diagnostic: %v\n%s", n+1, err, line)
		}
		if d.Analyzer == "" || d.File == "" || d.Line <= 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		if !d.Suppressed {
			t.Errorf("unsuppressed diagnostic on a clean tree: %+v", d)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("-json emitted no lines; justified //upa:allow sites should still be reported with suppressed=true")
	}
}

// TestVetUnit exercises the go vet driver path: a per-package cfg naming a
// violating file must produce findings, exit 1, and write the facts file.
func TestVetUnit(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "a.go")
	if err := os.WriteFile(src, []byte(`package sub

import (
	"context"
	"fmt"
)

func f() context.Context { return context.Background() }

func show(v []float64) { fmt.Println(v) }
`), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "out.vetx")
	cfg, err := json.Marshal(map[string]any{
		"ImportPath": "probe/internal/sub",
		"GoFiles":    []string{src},
		"VetxOutput": vetx,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, cfg, 0o666); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{cfgPath}); code != 1 {
		t.Fatalf("run(cfg with violation) = %d, want 1", code)
	}
	data, err := os.ReadFile(vetx)
	if err != nil {
		t.Fatalf("facts file not written: %v", err)
	}
	facts, err := analysis.DecodeFacts(data)
	if err != nil {
		t.Fatalf("vetx output is not a facts encoding: %v", err)
	}
	// Facts keep only non-trivial summaries; show formats its parameter, so
	// it must export SinkParams for downstream units.
	found := false
	for _, s := range facts.Summaries {
		if s.Key.Name == "show" && s.Key.Pkg == "probe/internal/sub" && len(s.SinkParams) == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("facts lack a sink summary for func show: %+v", facts.Summaries)
	}

	// The same unit under a non-internal import path is clean.
	cfg2, _ := json.Marshal(map[string]any{
		"ImportPath": "probe/sub",
		"GoFiles":    []string{src},
		"VetxOutput": vetx,
	})
	cfgPath2 := filepath.Join(dir, "vet2.cfg")
	if err := os.WriteFile(cfgPath2, cfg2, 0o666); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{cfgPath2}); code != 0 {
		t.Fatalf("run(cfg without violation) = %d, want 0", code)
	}
}

// TestVetUnitDepFacts proves the cross-package channel: a dependency's facts
// file marking SecretAgg as a taint field makes dpflow fire in a unit that
// formats that field — without the dep facts the same unit is clean.
func TestVetUnitDepFacts(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "show.go")
	if err := os.WriteFile(src, []byte(`package show

import "fmt"

type report struct{ SecretAgg []float64 }

func dump(r report) {
	fmt.Println(r.SecretAgg)
}
`), 0o666); err != nil {
		t.Fatal(err)
	}
	mkCfg := func(name, vetxName string, deps map[string]string) string {
		cfg, err := json.Marshal(map[string]any{
			"ImportPath":  "probe/show",
			"GoFiles":     []string{src},
			"VetxOutput":  filepath.Join(dir, vetxName),
			"PackageVetx": deps,
		})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, cfg, 0o666); err != nil {
			t.Fatal(err)
		}
		return path
	}

	if code := run([]string{mkCfg("plain.cfg", "plain.vetx", nil)}); code != 0 {
		t.Fatalf("unit without dep facts = %d, want 0 (SecretAgg is not yet a source)", code)
	}

	depFacts, err := (&analysis.Facts{TaintFields: []string{"SecretAgg"}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	depVetx := filepath.Join(dir, "dep.vetx")
	if err := os.WriteFile(depVetx, depFacts, 0o666); err != nil {
		t.Fatal(err)
	}
	code := run([]string{mkCfg("dep.cfg", "dep.vetx.out", map[string]string{"probe/dep": depVetx})})
	if code != 1 {
		t.Fatalf("unit with dep facts = %d, want 1 (imported taint field must reach fmt.Println)", code)
	}
}
