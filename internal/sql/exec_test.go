package sql

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"upa/internal/mapreduce"
)

func eng() *mapreduce.Engine { return mapreduce.NewEngine() }

// orders is a small test relation.
func ordersScan() *ScanPlan {
	cols := Schema{
		{Name: "orderkey", Kind: KindInt},
		{Name: "custkey", Kind: KindInt},
		{Name: "price", Kind: KindFloat},
		{Name: "status", Kind: KindString},
	}
	rows := []Row{
		{Int(1), Int(10), Float(100), Str("F")},
		{Int(2), Int(11), Float(250), Str("O")},
		{Int(3), Int(10), Float(50), Str("F")},
		{Int(4), Int(12), Float(400), Str("F")},
		{Int(5), Int(11), Float(75), Str("O")},
	}
	return Scan("orders", cols, rows)
}

func customersScan() *ScanPlan {
	cols := Schema{
		{Name: "custkey", Kind: KindInt},
		{Name: "nation", Kind: KindString},
	}
	rows := []Row{
		{Int(10), Str("DE")},
		{Int(11), Str("FR")},
		{Int(12), Str("DE")},
		{Int(13), Str("US")},
	}
	return Scan("customers", cols, rows)
}

func TestScanExecute(t *testing.T) {
	rows, schema, err := Execute(eng(), ordersScan())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || len(schema) != 4 {
		t.Fatalf("scan returned %d rows × %d cols", len(rows), len(schema))
	}
}

func TestFilterExecute(t *testing.T) {
	plan := Where(ordersScan(), Eq(Col("status"), Lit(Str("F"))))
	rows, _, err := Execute(eng(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("filter kept %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if s, _ := r[3].AsString(); s != "F" {
			t.Fatalf("non-matching row survived: %v", r)
		}
	}
}

func TestProjectExecute(t *testing.T) {
	plan := Project(ordersScan(),
		NamedExpr{Name: "okey", Expr: Col("orderkey")},
		NamedExpr{Name: "taxed", Expr: Mul(Col("price"), Lit(Float(1.1)))},
	)
	rows, schema, err := Execute(eng(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(schema) != 2 || schema[1].Name != "taxed" || schema[1].Kind != KindFloat {
		t.Fatalf("schema = %v", schema)
	}
	if v, _ := rows[0][1].AsFloat(); math.Abs(v-110) > 1e-9 {
		t.Fatalf("taxed price = %v, want 110", v)
	}
}

func TestJoinExecute(t *testing.T) {
	plan := JoinOn(ordersScan(), "custkey", customersScan(), "custkey")
	rows, schema, err := Execute(eng(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(schema) != 6 {
		t.Fatalf("join schema has %d columns, want 6", len(schema))
	}
	if len(rows) != 5 { // every order matches exactly one customer
		t.Fatalf("join produced %d rows, want 5", len(rows))
	}
	for _, r := range rows {
		ok1, _ := r[1].AsInt()
		ok2, _ := r[4].AsInt()
		if ok1 != ok2 {
			t.Fatalf("join keys differ in output row: %v", r)
		}
	}
}

func TestGlobalAggregate(t *testing.T) {
	plan := GroupBy(ordersScan(), nil,
		AggSpec{Name: "n", Func: AggCount},
		AggSpec{Name: "total", Func: AggSum, Arg: Col("price")},
		AggSpec{Name: "avg", Func: AggAvg, Arg: Col("price")},
		AggSpec{Name: "lo", Func: AggMin, Arg: Col("price")},
		AggSpec{Name: "hi", Func: AggMax, Arg: Col("price")},
	)
	rows, schema, err := Execute(eng(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(schema) != 5 {
		t.Fatalf("global aggregate returned %d rows × %d cols", len(rows), len(schema))
	}
	r := rows[0]
	if n, _ := r[0].AsInt(); n != 5 {
		t.Errorf("count = %v, want 5", r[0])
	}
	if v, _ := r[1].AsFloat(); v != 875 {
		t.Errorf("sum = %v, want 875", v)
	}
	if v, _ := r[2].AsFloat(); v != 175 {
		t.Errorf("avg = %v, want 175", v)
	}
	if v, _ := r[3].AsFloat(); v != 50 {
		t.Errorf("min = %v, want 50", v)
	}
	if v, _ := r[4].AsFloat(); v != 400 {
		t.Errorf("max = %v, want 400", v)
	}
}

func TestGroupByAggregate(t *testing.T) {
	plan := GroupBy(ordersScan(), []string{"custkey"},
		AggSpec{Name: "n", Func: AggCount},
		AggSpec{Name: "spend", Func: AggSum, Arg: Col("price")},
	)
	rows, schema, err := Execute(eng(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(schema) != 3 || schema[0].Name != "custkey" {
		t.Fatalf("schema = %v", schema)
	}
	got := map[int64][2]float64{}
	for _, r := range rows {
		k, _ := r[0].AsInt()
		n, _ := r[1].AsInt()
		s, _ := r[2].AsFloat()
		got[k] = [2]float64{float64(n), s}
	}
	want := map[int64][2]float64{10: {2, 150}, 11: {2, 325}, 12: {1, 400}}
	if len(got) != len(want) {
		t.Fatalf("groups = %v, want %v", got, want)
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("group %d = %v, want %v", k, got[k], w)
		}
	}
}

func TestEmptyGlobalCount(t *testing.T) {
	empty := Scan("empty", Schema{{Name: "x", Kind: KindInt}}, nil)
	plan := GroupBy(empty, nil, AggSpec{Name: "n", Func: AggCount})
	n, err := ExecuteCount(eng(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("count over empty relation = %d, want 0", n)
	}
}

func TestLimitExecute(t *testing.T) {
	rows, _, err := Execute(eng(), Limit(ordersScan(), 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("limit kept %d rows, want 2", len(rows))
	}
	if _, _, err := Execute(eng(), Limit(ordersScan(), -1)); err == nil {
		t.Fatal("negative limit accepted")
	}
}

func TestExecuteCountValidation(t *testing.T) {
	if _, err := ExecuteCount(eng(), ordersScan()); err == nil {
		t.Fatal("multi-row plan accepted as count")
	}
}

func TestAggregateValidation(t *testing.T) {
	if _, _, err := Execute(eng(), GroupBy(ordersScan(), nil)); err == nil {
		t.Fatal("aggregate with no functions accepted")
	}
	if _, _, err := Execute(eng(), GroupBy(ordersScan(), nil,
		AggSpec{Name: "s", Func: AggSum})); err == nil {
		t.Fatal("sum without argument accepted")
	}
	if _, _, err := Execute(eng(), GroupBy(ordersScan(), nil,
		AggSpec{Name: "s", Func: AggSum, Arg: Col("status")})); err == nil {
		t.Fatal("sum over string accepted")
	}
	if _, _, err := Execute(eng(), GroupBy(ordersScan(), []string{"nope"},
		AggSpec{Name: "n", Func: AggCount})); err == nil {
		t.Fatal("group-by over unknown column accepted")
	}
}

func TestFilterTypeError(t *testing.T) {
	if _, _, err := Execute(eng(), Where(ordersScan(), Col("price"))); err == nil {
		t.Fatal("non-boolean predicate accepted")
	}
}

// TestJoinAggregateMatchesReference cross-checks the executor against an
// in-memory reference on random relations: count of joined pairs grouped
// sums.
func TestJoinAggregateMatchesReference(t *testing.T) {
	f := func(leftKeys, rightKeys []uint8) bool {
		leftCols := Schema{{Name: "k", Kind: KindInt}, {Name: "v", Kind: KindInt}}
		rightCols := Schema{{Name: "k2", Kind: KindInt}, {Name: "w", Kind: KindInt}}
		var left, right []Row
		for i, k := range leftKeys {
			left = append(left, Row{Int(int64(k % 8)), Int(int64(i))})
		}
		for i, k := range rightKeys {
			right = append(right, Row{Int(int64(k % 8)), Int(int64(i))})
		}
		want := 0
		for _, l := range left {
			for _, r := range right {
				if l[0] == r[0] {
					want++
				}
			}
		}
		plan := GroupBy(
			JoinOn(Scan("l", leftCols, left), "k", Scan("r", rightCols, right), "k2"),
			nil, AggSpec{Name: "n", Func: AggCount})
		n, err := ExecuteCount(eng(), plan)
		if err != nil {
			return false
		}
		return int(n) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDescribePlan(t *testing.T) {
	plan := Limit(GroupBy(Where(ordersScan(), Eq(Col("status"), Lit(Str("F")))), nil,
		AggSpec{Name: "n", Func: AggCount}), 1)
	d := Describe(plan)
	for _, want := range []string{"limit", "aggregate", "filter", "scan(orders)"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe = %q, missing %q", d, want)
		}
	}
}
