// Package relation provides the relational metadata layer over the engine:
// column statistics (row counts, distinct keys, maximum key frequency)
// computed as MapReduce jobs. FLEX's static analysis consumes exactly this
// metadata — it never looks at actual join matches, which is the root of its
// overestimation (§II-B).
package relation

import (
	"fmt"

	"upa/internal/mapreduce"
)

// ColumnStats summarizes one join column of one relation.
type ColumnStats struct {
	// RowCount is the number of rows in the relation.
	RowCount int
	// Distinct is the number of distinct keys in the column.
	Distinct int
	// MaxFreq is the frequency of the most frequently occurring key — the
	// quantity FLEX multiplies into its worst-case join sensitivity.
	MaxFreq int
}

// KeyFrequency computes the statistics of the column selected by key over
// records, as a ReduceByKey job on the engine.
func KeyFrequency[T any, K comparable](eng *mapreduce.Engine, records []T, key func(T) K) (ColumnStats, error) {
	if len(records) == 0 {
		return ColumnStats{}, nil
	}
	parts := eng.Workers()
	if parts > len(records) {
		parts = len(records)
	}
	if parts < 1 {
		parts = 1
	}
	ds, err := mapreduce.FromSlice(eng, records, parts)
	if err != nil {
		return ColumnStats{}, err
	}
	ones := mapreduce.Map(ds, func(t T) mapreduce.Pair[K, int] {
		return mapreduce.Pair[K, int]{Key: key(t), Value: 1}
	})
	counts, err := mapreduce.ReduceByKey(ones, func(a, b int) int { return a + b }).Collect()
	if err != nil {
		return ColumnStats{}, err
	}
	stats := ColumnStats{RowCount: len(records), Distinct: len(counts)}
	for _, p := range counts {
		if p.Value > stats.MaxFreq {
			stats.MaxFreq = p.Value
		}
	}
	return stats, nil
}

// StatsOf computes the same statistics as KeyFrequency in memory, without
// an engine — the hook the SQL optimizer's join ordering uses at
// plan-rewrite time, when no job should run. Like KeyFrequency it exposes
// only count aggregates (row count, distinct keys, top frequency), the
// metadata FLEX already consumes, never individual key values.
func StatsOf[T any, K comparable](records []T, key func(T) K) ColumnStats {
	counts := make(map[K]int, len(records))
	for _, t := range records {
		counts[key(t)]++
	}
	stats := ColumnStats{RowCount: len(records), Distinct: len(counts)}
	for _, c := range counts {
		if c > stats.MaxFreq {
			stats.MaxFreq = c
		}
	}
	return stats
}

// JoinCardinality estimates the output size of an equi-join between the
// column summarized by s and the one summarized by other: the standard
// |L|·|R| / max(distinct) uniform-key estimate, capped by the skew bound
// that each row matches at most the other side's most frequent key
// (|L|·maxfreqR and |R|·maxfreqL). Estimates only order joins; they never
// affect semantics.
func (s ColumnStats) JoinCardinality(other ColumnStats) int {
	if s.RowCount == 0 || other.RowCount == 0 {
		return 0
	}
	d := s.Distinct
	if other.Distinct > d {
		d = other.Distinct
	}
	if d < 1 {
		d = 1
	}
	est := int64(s.RowCount) * int64(other.RowCount) / int64(d)
	if other.MaxFreq > 0 {
		if bound := int64(s.RowCount) * int64(other.MaxFreq); bound < est {
			est = bound
		}
	}
	if s.MaxFreq > 0 {
		if bound := int64(other.RowCount) * int64(s.MaxFreq); bound < est {
			est = bound
		}
	}
	return int(est)
}

// Validate checks internal consistency of the statistics.
func (s ColumnStats) Validate() error {
	if s.RowCount < 0 || s.Distinct < 0 || s.MaxFreq < 0 {
		return fmt.Errorf("relation: negative statistic: %+v", s)
	}
	if s.Distinct > s.RowCount {
		return fmt.Errorf("relation: %d distinct keys in %d rows", s.Distinct, s.RowCount)
	}
	if s.MaxFreq > s.RowCount {
		return fmt.Errorf("relation: max frequency %d exceeds %d rows", s.MaxFreq, s.RowCount)
	}
	if s.RowCount > 0 && (s.Distinct == 0 || s.MaxFreq == 0) {
		return fmt.Errorf("relation: non-empty relation with empty column stats: %+v", s)
	}
	return nil
}
