package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"upa/internal/chaos"
	"upa/internal/cluster"
	"upa/internal/mapreduce"
)

// ChaosPolicySpec names one retry policy of the chaos sweep.
type ChaosPolicySpec struct {
	Name   string
	Policy chaos.RetryPolicy
}

// ChaosRow is one (fault rate, retry policy) cell of the chaos sweep: a full
// UPA release run under seeded fault injection, checked for output
// determinism against the fault-free baseline, with the engine's recovery
// counters and the cluster-model price of the run (including the Retry
// surcharge the recovery added).
type ChaosRow struct {
	Query       string
	FaultRate   float64
	Policy      string
	MaxAttempts int
	// Completed reports whether the release survived the fault rate under
	// this policy; Deterministic whether its output was byte-identical to
	// the fault-free baseline (vacuously false when not Completed).
	Completed     bool
	Deterministic bool
	// Recovery counters from the engine's metrics delta.
	TaskFaults     int64
	TaskRetries    int64
	ShuffleRetries int64
	SlotsLost      int64
	Backoff        time.Duration
	// SimCost is the cluster-model price of the run; SimRetry its Retry
	// component; Overhead the price normalized to the fault-free baseline.
	SimCost  time.Duration
	SimRetry time.Duration
	Overhead float64
}

// DefaultChaosPolicies returns the sweep's retry-policy axis: a fail-fast
// policy (no retries — any fault kills the release), the engine default, and
// a patient policy with more attempts and longer backoff.
func DefaultChaosPolicies() []ChaosPolicySpec {
	return []ChaosPolicySpec{
		{Name: "fail-fast", Policy: chaos.RetryPolicy{MaxAttempts: 1}},
		{Name: "default", Policy: chaos.RetryPolicy{
			MaxAttempts: 3, BaseBackoff: 200 * time.Microsecond,
			MaxBackoff: 2 * time.Millisecond, Jitter: 0.5, JitterSeed: 7}},
		{Name: "patient", Policy: chaos.RetryPolicy{
			MaxAttempts: 6, BaseBackoff: 500 * time.Microsecond,
			MaxBackoff: 8 * time.Millisecond, Jitter: 0.5, JitterSeed: 7}},
	}
}

// ChaosSweep prices fault tolerance: it releases one query through UPA under
// a grid of seeded fault rates × retry policies, verifying on every cell that
// recovery (when it succeeds) reproduces the fault-free output exactly, and
// pricing what the recovery cost in simulated cluster time. rates nil
// defaults to {0.02, 0.05, 0.1, 0.2}; policies nil to DefaultChaosPolicies.
// Each rate drives task faults, shuffle errors, and slot loss together.
func ChaosSweep(cfg Config, model cluster.Model, rates []float64, policies []ChaosPolicySpec) ([]ChaosRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if len(rates) == 0 {
		rates = []float64{0.02, 0.05, 0.1, 0.2}
	}
	if len(policies) == 0 {
		policies = DefaultChaosPolicies()
	}
	const queryName = "TPCH6"
	w, err := cfg.Workload(0)
	if err != nil {
		return nil, err
	}
	r, err := w.ByName(queryName)
	if err != nil {
		return nil, err
	}

	// Fault-free baseline: the output every faulted run must reproduce and
	// the price every faulted run is normalized to.
	baseEng := mapreduce.NewEngine()
	baseSys, err := cfg.newSystem(baseEng, cfg.SampleSize)
	if err != nil {
		return nil, err
	}
	baseRes, err := r.RunUPA(baseSys)
	if err != nil {
		return nil, fmt.Errorf("bench: chaos baseline %s: %w", queryName, err)
	}
	baseOut, err := json.Marshal(baseRes.Output)
	if err != nil {
		return nil, err
	}
	baseCost, err := model.Estimate(baseEng.Metrics())
	if err != nil {
		return nil, err
	}

	rows := make([]ChaosRow, 0, len(rates)*len(policies))
	for _, rate := range rates {
		if rate < 0 || rate >= 1 {
			return nil, fmt.Errorf("bench: chaos fault rate must be in [0, 1), got %v", rate)
		}
		for _, p := range policies {
			inj := chaos.New(chaos.Policy{
				Seed:             cfg.Seed,
				TaskFaultRate:    rate,
				ShuffleErrorRate: rate,
				SlotLossRate:     rate,
			})
			eng := mapreduce.NewEngine(
				mapreduce.WithRetryPolicy(p.Policy),
				mapreduce.WithChaos(inj))
			sys, err := cfg.newSystem(eng, cfg.SampleSize)
			if err != nil {
				return nil, err
			}
			res, runErr := r.RunUPA(sys)

			m := eng.Metrics()
			cost, err := model.Estimate(m)
			if err != nil {
				return nil, err
			}
			row := ChaosRow{
				Query:          queryName,
				FaultRate:      rate,
				Policy:         p.Name,
				MaxAttempts:    p.Policy.Attempts(),
				Completed:      runErr == nil,
				TaskFaults:     m.TaskFaults,
				TaskRetries:    m.TaskRetries,
				ShuffleRetries: m.ShuffleRetries,
				SlotsLost:      m.SlotsLost,
				Backoff:        time.Duration(m.BackoffNanos),
				SimCost:        cost.Total(),
				SimRetry:       cost.Retry,
				Overhead:       float64(cost.Total()) / float64(baseCost.Total()),
			}
			if runErr == nil {
				out, err := json.Marshal(res.Output)
				if err != nil {
					return nil, err
				}
				row.Deterministic = string(out) == string(baseOut)
				if !row.Deterministic {
					return nil, fmt.Errorf(
						"bench: chaos rate %v policy %s: recovered release diverged from the fault-free output",
						rate, p.Name)
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderChaos renders the chaos sweep.
func RenderChaos(rows []ChaosRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos sweep: seeded fault rates x retry policies on one UPA release\n")
	fmt.Fprintf(&b, "(a completed release is always checked byte-identical to the fault-free run)\n")
	fmt.Fprintf(&b, "%-8s %-10s %8s %9s %7s %7s %8s %6s %10s %12s %9s\n",
		"rate", "policy", "attempts", "done", "faults", "retries", "shufretr", "slots",
		"backoff", "sim", "overhead")
	for _, r := range rows {
		done := "ok"
		if !r.Completed {
			done = "FAILED"
		}
		fmt.Fprintf(&b, "%-8.2f %-10s %8d %9s %7d %7d %8d %6d %10v %12v %8.2fx\n",
			r.FaultRate, r.Policy, r.MaxAttempts, done,
			r.TaskFaults, r.TaskRetries, r.ShuffleRetries, r.SlotsLost,
			r.Backoff.Round(time.Microsecond), r.SimCost.Round(time.Microsecond), r.Overhead)
	}
	return b.String()
}
