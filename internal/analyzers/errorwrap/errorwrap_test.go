package errorwrap_test

import (
	"path/filepath"
	"testing"

	"upa/internal/analyzers/analyzertest"
	"upa/internal/analyzers/errorwrap"
)

func TestErrorWrapGolden(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "errorwrap")
	analyzertest.Run(t, dir, "upa/internal/fake", errorwrap.Analyzer)
}
