package jobgraph

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"upa/internal/chaos"
)

// TestLateSpeculativeCommitNotAppliedAfterFailure is the regression test for
// the speculative double-commit audit: a speculative twin that wins the
// claim while the stage is concurrently failing must either complete its
// commit before Run returns or be suppressed entirely — it must never mutate
// caller-visible state after Run has returned. Run under -race, the old
// scheduler (commit outside any synchronization with stage completion) is
// flagged here: the twin's slow commit raced with the test's post-Run read.
func TestLateSpeculativeCommitNotAppliedAfterFailure(t *testing.T) {
	boom := errors.New("boom")
	failNow := make(chan struct{})
	var part0Calls atomic.Int64
	commitRan := 0 // deliberately unsynchronized: the race detector is the assertion
	g := New("g", WithSlots(8), WithSpeculation(time.Millisecond)).
		Partitioned("work", 2, func(ctx context.Context, _ *StageContext, p int) (func(), error) {
			if p == 1 {
				// The failing partition waits until the twin has produced
				// its commit closure, so the failure and the commit race.
				select {
				case <-failNow:
				case <-ctx.Done():
				}
				return nil, boom
			}
			if part0Calls.Add(1) == 1 {
				<-ctx.Done() // primary straggles; speculation spawns a twin
				return nil, ctx.Err()
			}
			close(failNow)
			return func() {
				time.Sleep(5 * time.Millisecond) // slow commit
				commitRan++
			}, nil
		})
	_, err := g.Run(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("Run() = %v, want boom", err)
	}
	// Whatever the commit's fate, it must be settled by now: observing a
	// commit running after Run returned means the scheduler leaked it.
	before := commitRan
	time.Sleep(20 * time.Millisecond)
	if commitRan != before {
		t.Fatalf("commit mutated state after Run returned: %d -> %d", before, commitRan)
	}
}

// findStageSeed probes the seeded stage-fault stream for a seed whose fault
// pattern at site "g/work", task 0 matches want (want[i] = should attempt
// i+1 fault). Deterministic at test time, robust to hash details.
func findStageSeed(t *testing.T, rate float64, want []bool) chaos.Policy {
	t.Helper()
	for seed := uint64(1); seed < 5000; seed++ {
		p := chaos.Policy{Seed: seed, TaskFaultRate: rate}
		probe := chaos.New(p)
		ok := true
		for i, w := range want {
			if probe.StageFault("g/work", 0, i+1) != w {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
	t.Fatalf("no seed produces stage-fault pattern %v at rate %v", want, rate)
	return chaos.Policy{}
}

// TestPlainStageRetriesInjectedFaults: a plain stage absorbing injected
// faults retries under the policy and records the retries in its span.
func TestPlainStageRetriesInjectedFaults(t *testing.T) {
	// Attempts 1 and 2 fault, attempt 3 passes.
	inj := chaos.New(findStageSeed(t, 0.5, []bool{true, true, false}))
	ran := 0
	g := New("g", WithRetryPolicy(chaos.RetryPolicy{MaxAttempts: 3}), WithChaos(inj)).
		Stage("work", func(context.Context, *StageContext) error { ran++; return nil })
	spans, err := g.Run(context.Background())
	if err != nil {
		t.Fatalf("Run() = %v, want recovery within 3 attempts", err)
	}
	if ran != 1 {
		t.Errorf("stage body ran %d times, want 1", ran)
	}
	s := spans[0]
	if s.Attempts != 3 || s.Retries != 2 || s.TaskFaults != 2 {
		t.Errorf("span = %d attempts / %d retries / %d faults, want 3/2/2", s.Attempts, s.Retries, s.TaskFaults)
	}
}

// TestPlainStageExhaustionNamesSite: out of attempts, the error names the
// graph/stage site and keeps the injected fault in the chain.
func TestPlainStageExhaustionNamesSite(t *testing.T) {
	inj := chaos.New(findStageSeed(t, 0.5, []bool{true, true}))
	g := New("g", WithRetryPolicy(chaos.RetryPolicy{MaxAttempts: 2}), WithChaos(inj)).
		Stage("work", func(context.Context, *StageContext) error { return nil })
	_, err := g.Run(context.Background())
	if err == nil {
		t.Fatal("Run() = nil, want exhaustion error")
	}
	if !errors.Is(err, chaos.ErrInjected) {
		t.Errorf("injected fault flattened out of the chain: %v", err)
	}
	if msg := err.Error(); !strings.Contains(msg, "g/work") || !strings.Contains(msg, "gave up after 2 attempts") {
		t.Errorf("error %q does not name the site and attempt count", msg)
	}
}

// TestGraphRetryBudgetFailsFast: the per-Run budget caps total retries even
// when individual tasks have attempts left.
func TestGraphRetryBudgetFailsFast(t *testing.T) {
	inj := chaos.New(findStageSeed(t, 0.5, []bool{true, true}))
	g := New("g", WithRetryPolicy(chaos.RetryPolicy{MaxAttempts: 10, RetryBudget: 1}), WithChaos(inj)).
		Stage("work", func(context.Context, *StageContext) error { return nil })
	_, err := g.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("Run() = %v, want retry-budget exhaustion", err)
	}
}

// TestPartitionedStageRetriesSeededFaults: seeded chaos on a partitioned
// stage — the stage absorbs the faults, commits every partition exactly
// once, and the fault pattern is reproducible run to run.
func TestPartitionedStageRetriesSeededFaults(t *testing.T) {
	const parts = 8
	policy := chaos.RetryPolicy{MaxAttempts: 6, BaseBackoff: 10 * time.Microsecond}
	// Probe for a seed that faults at least one first attempt but lets every
	// partition through within the attempt allowance — deterministic at test
	// time, robust to hash details.
	site := "g/work"
	var seed uint64
	for s := uint64(1); s < 200; s++ {
		probe := chaos.New(chaos.Policy{Seed: s, TaskFaultRate: 0.4})
		anyFault, allPass := false, true
		for p := 0; p < parts; p++ {
			if probe.StageFault(site, p, 1) {
				anyFault = true
			}
			ok := false
			for a := 1; a <= policy.MaxAttempts; a++ {
				if !probe.StageFault(site, p, a) {
					ok = true
					break
				}
			}
			allPass = allPass && ok
		}
		if anyFault && allPass {
			seed = s
			break
		}
	}
	if seed == 0 {
		t.Fatal("no usable probe seed found")
	}

	run := func() (Span, []int64) {
		commits := make([]int64, parts)
		g := New("g", WithSlots(4),
			WithRetryPolicy(policy),
			WithChaos(chaos.New(chaos.Policy{Seed: seed, TaskFaultRate: 0.4}))).
			Partitioned("work", parts, func(_ context.Context, _ *StageContext, p int) (func(), error) {
				return func() { commits[p]++ }, nil
			})
		spans, err := g.Run(context.Background())
		if err != nil {
			t.Fatalf("Run() = %v, want recovery under seeded faults", err)
		}
		return spans[0], commits
	}
	s1, c1 := run()
	s2, c2 := run()
	for p := 0; p < parts; p++ {
		if c1[p] != 1 || c2[p] != 1 {
			t.Fatalf("partition %d committed %d/%d times, want exactly once", p, c1[p], c2[p])
		}
	}
	if s1.TaskFaults == 0 || s1.Retries == 0 {
		t.Errorf("span recorded %d faults / %d retries, want > 0", s1.TaskFaults, s1.Retries)
	}
	if s1.TaskFaults != s2.TaskFaults || s1.Retries != s2.Retries {
		t.Errorf("same seed, different fault pattern: %d/%d vs %d/%d",
			s1.TaskFaults, s1.Retries, s2.TaskFaults, s2.Retries)
	}
}

// TestPartitionAttemptDeadlineRetries: a partition attempt exceeding the
// policy's per-attempt deadline is cancelled and re-run while the job stays
// live.
func TestPartitionAttemptDeadlineRetries(t *testing.T) {
	var calls atomic.Int64
	committed := atomic.Bool{}
	g := New("g", WithSlots(2),
		WithRetryPolicy(chaos.RetryPolicy{MaxAttempts: 3, TaskDeadline: 5 * time.Millisecond})).
		Partitioned("work", 1, func(ctx context.Context, _ *StageContext, _ int) (func(), error) {
			if calls.Add(1) == 1 {
				<-ctx.Done() // hang until the attempt deadline fires
				return nil, ctx.Err()
			}
			return func() { committed.Store(true) }, nil
		})
	spans, err := g.Run(context.Background())
	if err != nil {
		t.Fatalf("Run() = %v, want recovery on second attempt", err)
	}
	if !committed.Load() {
		t.Error("winning attempt's commit not applied")
	}
	if spans[0].Retries != 1 {
		t.Errorf("Retries = %d, want 1", spans[0].Retries)
	}
}
