package core

import (
	"testing"

	"upa/internal/stats"
)

func TestEnforcerEmptyHistoryNeverCollides(t *testing.T) {
	e := NewRangeEnforcer(1e-9)
	if _, bad := e.Collides([2][]float64{{1}, {2}}); bad {
		t.Fatal("empty history collided")
	}
	if e.HistoryLen() != 0 {
		t.Fatalf("HistoryLen = %d, want 0", e.HistoryLen())
	}
}

func TestEnforcerCase1BothPartitionsDiffer(t *testing.T) {
	// Case 1 of §IV-B: both partition outputs differ, so the datasets are
	// at least two records apart — not an attack.
	e := NewRangeEnforcer(1e-9)
	e.Record("q1", [2][]float64{{10}, {20}})
	if name, bad := e.Collides([2][]float64{{11}, {21}}); bad {
		t.Fatalf("Case 1 flagged as collision with %q", name)
	}
}

func TestEnforcerCase2OnePartitionMatches(t *testing.T) {
	// Case 2: at least one partition output matches — possible attack.
	e := NewRangeEnforcer(1e-9)
	e.Record("q1", [2][]float64{{10}, {20}})
	cases := [][2][]float64{
		{{10}, {21}}, // first partition matches
		{{11}, {20}}, // second partition matches
		{{10}, {20}}, // both match (identical rerun)
	}
	for i, parts := range cases {
		name, bad := e.Collides(parts)
		if !bad {
			t.Errorf("case %d not flagged", i)
		}
		if name != "q1" {
			t.Errorf("case %d collided with %q, want q1", i, name)
		}
	}
}

func TestEnforcerChecksAllHistory(t *testing.T) {
	e := NewRangeEnforcer(1e-9)
	e.Record("q1", [2][]float64{{1}, {2}})
	e.Record("q2", [2][]float64{{3}, {4}})
	// Differs from q1 in both parts, but matches q2's first part.
	if name, bad := e.Collides([2][]float64{{3}, {5}}); !bad || name != "q2" {
		t.Fatalf("Collides = %q, %v; want q2, true", name, bad)
	}
}

func TestEnforcerToleranceAbsorbsFPNoise(t *testing.T) {
	e := NewRangeEnforcer(1e-9)
	e.Record("q", [2][]float64{{1e9}, {2e9}})
	// Different reduce orders perturb floating-point sums in the last few
	// bits; such outputs must still be recognized as "the same".
	if _, bad := e.Collides([2][]float64{{1e9 + 1e-3}, {2e9 - 1e-3}}); !bad {
		t.Fatal("FP-noise-identical outputs not recognized as the same")
	}
}

func TestEnforcerReset(t *testing.T) {
	e := NewRangeEnforcer(0) // falls back to default tolerance
	e.Record("q", [2][]float64{{1}, {2}})
	if e.HistoryLen() != 1 {
		t.Fatalf("HistoryLen = %d, want 1", e.HistoryLen())
	}
	e.Reset()
	if e.HistoryLen() != 0 {
		t.Fatalf("HistoryLen after Reset = %d, want 0", e.HistoryLen())
	}
	if _, bad := e.Collides([2][]float64{{1}, {2}}); bad {
		t.Fatal("reset enforcer still collides")
	}
}

func TestEnforcerRecordCopiesInput(t *testing.T) {
	e := NewRangeEnforcer(1e-9)
	parts := [2][]float64{{1}, {2}}
	e.Record("q", parts)
	parts[0][0] = 99
	if _, bad := e.Collides([2][]float64{{1}, {2}}); !bad {
		t.Fatal("history entry shared caller's backing array")
	}
}

func TestClamp(t *testing.T) {
	rng := stats.NewRNG(1)
	lo := []float64{0, 0, 0}
	hi := []float64{10, 10, 10}
	out, n := Clamp([]float64{5, -3, 42}, lo, hi, rng)
	if n != 2 {
		t.Fatalf("clamped %d coordinates, want 2", n)
	}
	if out[0] != 5 {
		t.Errorf("in-range coordinate altered: %v", out[0])
	}
	for i, v := range out {
		if v < lo[i] || v > hi[i] {
			t.Errorf("coordinate %d = %v escaped [%v, %v]", i, v, lo[i], hi[i])
		}
	}
	// Determinism.
	a, _ := Clamp([]float64{-1}, []float64{0}, []float64{1}, stats.NewRNG(9))
	b, _ := Clamp([]float64{-1}, []float64{0}, []float64{1}, stats.NewRNG(9))
	if a[0] != b[0] {
		t.Error("Clamp not deterministic in the RNG")
	}
}
