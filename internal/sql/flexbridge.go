package sql

import (
	"fmt"

	"upa/internal/flex"
	"upa/internal/mapreduce"
	"upa/internal/relation"
)

// FLEXPlan extracts the static model FLEX analyzes from a relational plan:
// whether the query is a supported count, and for every Join operator the
// column statistics of the two join columns. Faithful to FLEX's documented
// blind spots (§II-B of the UPA paper), the statistics are computed with
// every Filter stripped from the plan — FLEX "does not consider the effect
// of join condition (i.e., Filter)" — and the actual join keys are never
// intersected.
//
// The static walk deliberately stays on the RAW plan: FLEX models the query
// as the analyst wrote it, so an optimizer rewrite must not change which
// joins it sees or in what shape. Only the *execution* that computes each
// key column's statistics (keyStats, via Execute) routes through the
// optimizer — it affects how fast the statistics are computed, never their
// values, because Optimize preserves the output row multiset.
func FLEXPlan(eng *mapreduce.Engine, name string, plan Plan) (flex.Plan, error) {
	out := flex.Plan{Name: name, CountQuery: isGlobalCount(plan)}
	if !out.CountQuery {
		return out, nil
	}
	joins, err := collectJoins(eng, plan)
	if err != nil {
		return flex.Plan{}, err
	}
	out.Joins = joins
	return out, nil
}

// isGlobalCount reports whether the plan's root (below any Limit) is a
// global single-Count aggregate — the only fragment FLEX supports.
func isGlobalCount(plan Plan) bool {
	for {
		switch p := plan.(type) {
		case *LimitPlan:
			plan = p.Input
		case *OrderByPlan:
			plan = p.Input
		case *AggregatePlan:
			return len(p.GroupBy) == 0 && len(p.Aggs) == 1 && p.Aggs[0].Func == AggCount
		default:
			return false
		}
	}
}

// collectJoins walks the plan and, for every Join, computes the two join
// columns' statistics over the filter-stripped inputs.
func collectJoins(eng *mapreduce.Engine, plan Plan) ([]flex.Join, error) {
	var joins []flex.Join
	var walk func(Plan) error
	walk = func(p Plan) error {
		switch n := p.(type) {
		case *ScanPlan:
			return nil
		case *FilterPlan:
			return walk(n.Input)
		case *ProjectPlan:
			return walk(n.Input)
		case *LimitPlan:
			return walk(n.Input)
		case *AggregatePlan:
			return walk(n.Input)
		case *OrderByPlan:
			return walk(n.Input)
		case *DistinctPlan:
			return walk(n.Input)
		case *JoinPlan:
			if err := walk(n.Left); err != nil {
				return err
			}
			if err := walk(n.Right); err != nil {
				return err
			}
			left, err := keyStats(eng, n.Left, n.LeftKey)
			if err != nil {
				return err
			}
			right, err := keyStats(eng, n.Right, n.RightKey)
			if err != nil {
				return err
			}
			joins = append(joins, flex.Join{Left: left, Right: right})
			return nil
		default:
			return fmt.Errorf("sql: FLEX extraction over unknown node %T", p)
		}
	}
	if err := walk(plan); err != nil {
		return nil, err
	}
	return joins, nil
}

// keyStats computes the key column's statistics over the filter-stripped
// side of a join.
func keyStats(eng *mapreduce.Engine, side Plan, key string) (relation.ColumnStats, error) {
	stripped := stripFilters(side)
	schema, err := stripped.Schema()
	if err != nil {
		return relation.ColumnStats{}, err
	}
	idx, err := schema.IndexOf(key)
	if err != nil {
		return relation.ColumnStats{}, err
	}
	rows, _, err := Execute(eng, stripped)
	if err != nil {
		return relation.ColumnStats{}, err
	}
	return relation.KeyFrequency(eng, rows, func(r Row) Value { return r[idx] })
}

// stripFilters rewrites the plan with every Filter removed, modelling
// FLEX's filter blindness.
func stripFilters(plan Plan) Plan {
	switch p := plan.(type) {
	case *FilterPlan:
		return stripFilters(p.Input)
	case *ProjectPlan:
		return &ProjectPlan{Input: stripFilters(p.Input), Exprs: p.Exprs}
	case *JoinPlan:
		return &JoinPlan{
			Left: stripFilters(p.Left), Right: stripFilters(p.Right),
			LeftKey: p.LeftKey, RightKey: p.RightKey,
		}
	case *AggregatePlan:
		return &AggregatePlan{Input: stripFilters(p.Input), GroupBy: p.GroupBy, Aggs: p.Aggs}
	case *LimitPlan:
		return &LimitPlan{Input: stripFilters(p.Input), N: p.N}
	case *OrderByPlan:
		return &OrderByPlan{Input: stripFilters(p.Input), Keys: p.Keys}
	case *DistinctPlan:
		return &DistinctPlan{Input: stripFilters(p.Input)}
	default:
		return plan
	}
}
