package sql

import (
	"strings"
	"testing"
)

var exprSchema = Schema{
	{Name: "i", Kind: KindInt},
	{Name: "f", Kind: KindFloat},
	{Name: "s", Kind: KindString},
	{Name: "b", Kind: KindBool},
}

var exprRow = Row{Int(6), Float(2.5), Str("hello"), Bool(true)}

func evalExpr(t *testing.T, e Expr) Value {
	t.Helper()
	bound, _, err := e.bind(exprSchema)
	if err != nil {
		t.Fatalf("bind %s: %v", e.describe(), err)
	}
	v, err := bound(exprRow)
	if err != nil {
		t.Fatalf("eval %s: %v", e.describe(), err)
	}
	return v
}

func TestExprEvaluation(t *testing.T) {
	tests := []struct {
		name string
		expr Expr
		want Value
	}{
		{"col int", Col("i"), Int(6)},
		{"col string", Col("s"), Str("hello")},
		{"lit", Lit(Float(1.25)), Float(1.25)},
		{"int add", Add(Col("i"), Lit(Int(4))), Int(10)},
		{"int sub", Sub(Col("i"), Lit(Int(10))), Int(-4)},
		{"int mul", Mul(Col("i"), Lit(Int(3))), Int(18)},
		{"mixed add widens", Add(Col("i"), Col("f")), Float(8.5)},
		{"div always float", Div(Col("i"), Lit(Int(4))), Float(1.5)},
		{"eq true", Eq(Col("i"), Lit(Int(6))), Bool(true)},
		{"eq false", Eq(Col("i"), Lit(Int(7))), Bool(false)},
		{"eq cross numeric", Eq(Col("i"), Lit(Float(6))), Bool(true)},
		{"ne", Ne(Col("s"), Lit(Str("world"))), Bool(true)},
		{"lt", Lt(Col("f"), Lit(Float(3))), Bool(true)},
		{"le", Le(Col("i"), Lit(Int(6))), Bool(true)},
		{"gt", Gt(Col("i"), Lit(Int(5))), Bool(true)},
		{"ge false", Ge(Col("f"), Lit(Float(3))), Bool(false)},
		{"and", And(Col("b"), Gt(Col("i"), Lit(Int(0)))), Bool(true)},
		{"or short circuit", Or(Col("b"), Eq(Col("s"), Lit(Str("x")))), Bool(true)},
		{"not", Not(Eq(Col("i"), Lit(Int(0)))), Bool(true)},
		{"string eq", Eq(Col("s"), Lit(Str("hello"))), Bool(true)},
		{"string lt", Lt(Col("s"), Lit(Str("zzz"))), Bool(true)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := evalExpr(t, tt.expr); got != tt.want {
				t.Errorf("%s = %v, want %v", tt.expr.describe(), got, tt.want)
			}
		})
	}
}

func TestExprBindErrors(t *testing.T) {
	bad := []Expr{
		Col("missing"),
		Add(Col("s"), Lit(Int(1))),
		And(Col("i"), Col("b")),
		Not(Col("i")),
		Mul(Col("b"), Col("b")),
	}
	for _, e := range bad {
		if _, _, err := e.bind(exprSchema); err == nil {
			t.Errorf("bind %s succeeded, want error", e.describe())
		}
	}
}

func TestExprRuntimeErrors(t *testing.T) {
	// Division by zero surfaces as an evaluation error.
	e := Div(Col("i"), Sub(Col("i"), Lit(Int(6))))
	bound, _, err := e.bind(exprSchema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bound(exprRow); err == nil {
		t.Fatal("division by zero succeeded")
	}
	// Cross-kind ordering surfaces at evaluation.
	cmp := Lt(Col("s"), Col("i"))
	bound, _, err = cmp.bind(exprSchema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bound(exprRow); err == nil {
		t.Fatal("string < int succeeded")
	}
}

func TestExprDescribe(t *testing.T) {
	e := And(Eq(Col("a"), Lit(Int(1))), Not(Col("b")))
	d := e.describe()
	for _, want := range []string{"a", "=", "1", "AND", "NOT", "b"} {
		if !strings.Contains(d, want) {
			t.Errorf("describe %q missing %q", d, want)
		}
	}
}
