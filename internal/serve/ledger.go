// Package serve is UPA's multi-tenant DP query service: the serving layer
// between untrusted analysts and the release machinery. It owns the three
// decisions a production deployment must make before any computation runs —
//
//	may this tenant/user still spend ε?   (hierarchical budget ledger)
//	may this query run right now?         (admission control, backpressure)
//	has this exact release been computed? (release cache, zero re-spend)
//
// — and makes each one explicit and observable: budget exhaustion and
// queue overflow are 429 decisions with Retry-After hints, never silent
// failures (the deployment drift Munilla Garrido et al. document), and
// every ledger movement lands in an append-only journal that replays on
// restart, so a service bounce can neither erase spend nor change what a
// cached release returns.
//
// Budgets follow the person-level discipline of Knop & Steinke: each user's
// contribution is bounded *before* the query runs — admission charges the
// user's ledger up front and refunds only when the release provably never
// happened — rather than accounted per-record after the fact.
package serve

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Budget-admission sentinels. Callers branch on these with errors.Is; the
// wrapped messages carry the tenant/user and the shortfall.
var (
	// ErrUnknownTenant rejects queries from tenants never registered.
	ErrUnknownTenant = errors.New("serve: unknown tenant")
	// ErrTenantBudget rejects a charge the tenant's total budget cannot cover.
	ErrTenantBudget = errors.New("serve: tenant privacy budget exhausted")
	// ErrUserBudget rejects a charge the per-user budget cannot cover.
	ErrUserBudget = errors.New("serve: user privacy budget exhausted")
)

// budgetSlack absorbs float accumulation error in budget comparisons, the
// same tolerance the session-level ledger uses.
const budgetSlack = 1e-12

// Ledger is the hierarchical ε ledger: tenant → user. Every successful
// release charges exactly one (tenant, user) pair; the tenant's spend is by
// construction the sum of its users' spends. A Ledger is safe for
// concurrent use.
//
// Mutation discipline (enforced by the epsiloncharge analyzer): the raw
// spentEps fields move only through applyDeltaLocked and are read only
// through spentLocked; applyDeltaLocked is reachable only from
// ChargeAdmission, RefundAdmission and replayEntry; and
// ChargeAdmission/RefundAdmission may be called only from the Service's
// blessed admission site. The //upa:guardedby(mu) annotations below are
// enforced by the lockdiscipline analyzer: every access must hold l.mu or
// sit in a *Locked helper whose callers are checked instead.
type Ledger struct {
	mu      sync.Mutex
	tenants map[string]*tenantLedger //upa:guardedby(mu)
	// persist, when non-nil, appends one journal entry per ledger movement
	// (registration, charge, refund). Replayed movements bypass it.
	persist func(entry) error //upa:guardedby(mu)
}

// tenantLedger is one tenant's budget state. The guard is the owning
// Ledger's mu — tenantLedgers are reachable only through Ledger.tenants.
type tenantLedger struct {
	budget     float64                //upa:guardedby(mu) — total ε across all the tenant's users; 0 = unlimited
	userBudget float64                //upa:guardedby(mu) — ε cap per user; 0 = unlimited
	spentEps   float64                //upa:guardedby(mu)
	users      map[string]*userLedger //upa:guardedby(mu)
}

// userLedger is one user's spend under a tenant, guarded by the owning
// Ledger's mu like the tenantLedger above.
type userLedger struct {
	spentEps float64 //upa:guardedby(mu)
}

// NewLedger returns an empty ledger. persist, when non-nil, receives one
// journal entry per ledger movement.
func NewLedger(persist func(entry) error) *Ledger {
	return &Ledger{tenants: make(map[string]*tenantLedger), persist: persist}
}

// applyDeltaLocked is the single mutation point of the raw spend counters:
// eps (positive for charges, negative for refunds) lands on the tenant and,
// in lockstep, on the user. The *Locked suffix is load-bearing: callers
// hold l.mu, and the lockdiscipline analyzer checks each call site against
// that caller-must-hold summary.
func applyDeltaLocked(t *tenantLedger, u *userLedger, eps float64) {
	t.spentEps += eps
	u.spentEps += eps
}

// spentLocked is the single read point of the raw spend counters. Callers
// hold l.mu.
func spentLocked(t *tenantLedger, u *userLedger) (tenantSpent, userSpent float64) {
	if u == nil {
		return t.spentEps, 0
	}
	return t.spentEps, u.spentEps
}

// setPersist installs (or replaces) the journal sink. Construction-time
// replay runs with a nil sink so replayed movements are not re-journaled;
// the write itself still takes the lock — persist is read under mu by every
// charge path, and an unlocked publish here is exactly the race the
// lockdiscipline analyzer caught in NewService.
func (l *Ledger) setPersist(persist func(entry) error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.persist = persist
}

// Register creates (or re-budgets) a tenant. budget is the tenant's total ε
// across all users, userBudget the ε cap per user; zero means unlimited at
// that level. Registration is idempotent — re-registering with the same
// budgets is a no-op — and journaled, so a replayed journal reconstructs
// the registry.
func (l *Ledger) Register(tenant string, budget, userBudget float64) error {
	if tenant == "" {
		return fmt.Errorf("serve: empty tenant name")
	}
	if budget < 0 || userBudget < 0 {
		return fmt.Errorf("serve: tenant %q budgets must be non-negative (got %v, %v)", tenant, budget, userBudget)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if t, ok := l.tenants[tenant]; ok && t.budget == budget && t.userBudget == userBudget {
		return nil
	}
	l.registerLocked(tenant, budget, userBudget)
	if l.persist != nil {
		return l.persist(entry{Kind: entryTenant, Tenant: tenant, Budget: budget, UserBudget: userBudget})
	}
	return nil
}

// registerLocked creates or re-budgets the tenant. Callers hold l.mu.
func (l *Ledger) registerLocked(tenant string, budget, userBudget float64) {
	t, ok := l.tenants[tenant]
	if !ok {
		t = &tenantLedger{users: make(map[string]*userLedger)}
		l.tenants[tenant] = t
	}
	t.budget, t.userBudget = budget, userBudget
}

// Has reports whether the tenant is registered.
func (l *Ledger) Has(tenant string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.tenants[tenant]
	return ok
}

// ChargeAdmission spends eps from tenant's and user's budgets, atomically
// and exactly once, before the release computes: it fails — leaving both
// ledgers untouched — when either level cannot cover the charge, so a
// rejected query provably spends nothing. The charge is journaled before
// the call returns; if journaling fails the charge is rolled back and the
// query must not run (fail closed: an unrecorded charge would be forgotten
// by a restart).
func (l *Ledger) ChargeAdmission(tenant, user string, eps float64) error {
	if eps <= 0 {
		return fmt.Errorf("serve: charge must be positive, got %v", eps)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	t, ok := l.tenants[tenant]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	u, ok := t.users[user]
	if !ok {
		u = &userLedger{}
		t.users[user] = u
	}
	tenantSpent, userSpent := spentLocked(t, u)
	if t.budget > 0 && tenantSpent+eps > t.budget+budgetSlack {
		return fmt.Errorf("%w: tenant %q spent %.6g of %.6g, charge %.6g does not fit",
			ErrTenantBudget, tenant, tenantSpent, t.budget, eps)
	}
	if t.userBudget > 0 && userSpent+eps > t.userBudget+budgetSlack {
		return fmt.Errorf("%w: user %q under tenant %q spent %.6g of %.6g, charge %.6g does not fit",
			ErrUserBudget, user, tenant, userSpent, t.userBudget, eps)
	}
	applyDeltaLocked(t, u, eps)
	if l.persist != nil {
		if err := l.persist(entry{Kind: entryCharge, Tenant: tenant, User: user, Eps: eps}); err != nil {
			applyDeltaLocked(t, u, -eps)
			return fmt.Errorf("serve: journal charge: %w", err)
		}
	}
	return nil
}

// RefundAdmission returns a previously admitted charge after the release
// failed before publishing anything. Like the charge it reverses, the
// refund is journaled; a journaling failure leaves the charge standing
// (over-counting spend is safe, under-counting is not).
func (l *Ledger) RefundAdmission(tenant, user string, eps float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	t, ok := l.tenants[tenant]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	u, ok := t.users[user]
	if !ok {
		return fmt.Errorf("serve: refund for unknown user %q under tenant %q", user, tenant)
	}
	applyDeltaLocked(t, u, -eps)
	if l.persist != nil {
		if err := l.persist(entry{Kind: entryRefund, Tenant: tenant, User: user, Eps: eps}); err != nil {
			return fmt.Errorf("serve: journal refund: %w", err)
		}
	}
	return nil
}

// replayEntry applies one journal entry to the in-memory state without
// re-journaling it — the restart path. Unknown-tenant charges register the
// tenant with unlimited budgets first; the registration entry that follows
// in any complete journal re-budgets it.
func (l *Ledger) replayEntry(e entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch e.Kind {
	case entryTenant:
		l.registerLocked(e.Tenant, e.Budget, e.UserBudget)
	case entryCharge, entryRefund:
		t, ok := l.tenants[e.Tenant]
		if !ok {
			l.registerLocked(e.Tenant, 0, 0)
			t = l.tenants[e.Tenant]
		}
		u, ok := t.users[e.User]
		if !ok {
			u = &userLedger{}
			t.users[e.User] = u
		}
		eps := e.Eps
		if e.Kind == entryRefund {
			eps = -eps
		}
		applyDeltaLocked(t, u, eps)
	}
}

// UserBudgetReport is one user's row of a budget report.
type UserBudgetReport struct {
	User      string  `json:"user"`
	Spent     float64 `json:"spent"`
	Remaining float64 `json:"remaining"` // +Inf serialized as null by reports; see Remaining
}

// TenantBudgetReport is one tenant's budget state as served by GET /budget.
type TenantBudgetReport struct {
	Tenant     string             `json:"tenant"`
	Budget     float64            `json:"budget"`     // 0 = unlimited
	UserBudget float64            `json:"userBudget"` // 0 = unlimited
	Spent      float64            `json:"spent"`
	Remaining  float64            `json:"remaining"` // budget - spent; -1 when unlimited
	Users      []UserBudgetReport `json:"users"`
}

// remainingOf converts (budget, spent) into the report convention: -1 means
// unlimited (JSON has no +Inf), otherwise the non-negative headroom.
func remainingOf(budget, spent float64) float64 {
	if budget <= 0 {
		return -1
	}
	return math.Max(0, budget-spent)
}

// Report snapshots every tenant's budget state, tenants and users sorted by
// name so the output is deterministic.
func (l *Ledger) Report() []TenantBudgetReport {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]TenantBudgetReport, 0, len(l.tenants))
	for name, t := range l.tenants {
		tenantSpent, _ := spentLocked(t, nil)
		rep := TenantBudgetReport{
			Tenant:     name,
			Budget:     t.budget,
			UserBudget: t.userBudget,
			Spent:      tenantSpent,
			Remaining:  remainingOf(t.budget, tenantSpent),
			Users:      make([]UserBudgetReport, 0, len(t.users)),
		}
		for uname, u := range t.users {
			_, userSpent := spentLocked(t, u)
			rep.Users = append(rep.Users, UserBudgetReport{
				User:      uname,
				Spent:     userSpent,
				Remaining: remainingOf(t.userBudget, userSpent),
			})
		}
		sort.Slice(rep.Users, func(i, j int) bool { return rep.Users[i].User < rep.Users[j].User })
		out = append(out, rep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Remaining reports the headroom left for (tenant, user): -1 at a level
// means unlimited. Unknown tenants and users report zero spend.
func (l *Ledger) Remaining(tenant, user string) (tenantRemaining, userRemaining float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	t, ok := l.tenants[tenant]
	if !ok {
		return 0, 0
	}
	tenantSpent, userSpent := spentLocked(t, t.users[user])
	return remainingOf(t.budget, tenantSpent), remainingOf(t.userBudget, userSpent)
}

// compact renders the ledger as a minimal entry sequence that replays to
// the same state: one registration per tenant, one cumulative charge per
// (tenant, user). Snapshots persist this instead of the raw journal.
func (l *Ledger) compact() []entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	tenants := make([]string, 0, len(l.tenants))
	for name := range l.tenants {
		tenants = append(tenants, name)
	}
	sort.Strings(tenants)
	var out []entry
	for _, name := range tenants {
		t := l.tenants[name]
		out = append(out, entry{Kind: entryTenant, Tenant: name, Budget: t.budget, UserBudget: t.userBudget})
		users := make([]string, 0, len(t.users))
		for uname := range t.users {
			users = append(users, uname)
		}
		sort.Strings(users)
		for _, uname := range users {
			// Zero-spend users (fully refunded) still replay: /budget keeps
			// listing them across a restart.
			_, spent := spentLocked(t, t.users[uname])
			out = append(out, entry{Kind: entryCharge, Tenant: name, User: uname, Eps: spent})
		}
	}
	return out
}
