package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual empirical summary statistics of a sample.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64 // unbiased (1/(n-1)) standard deviation
	Min    float64
	Max    float64
}

// Summarize computes summary statistics over xs. An empty sample yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, v := range xs {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, v := range xs {
			d := v - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// RMSE returns the root mean square error between predicted and truth. The
// slices must be the same non-zero length.
func RMSE(predicted, truth []float64) (float64, error) {
	if len(predicted) != len(truth) {
		return 0, fmt.Errorf("stats: RMSE over %d predictions vs %d truths", len(predicted), len(truth))
	}
	if len(predicted) == 0 {
		return 0, fmt.Errorf("stats: RMSE over empty sample")
	}
	var ss float64
	for i, p := range predicted {
		d := p - truth[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(predicted))), nil
}

// RelativeRMSE returns RMSE(predicted, truth) normalized by the mean absolute
// truth, expressed as a fraction (0.0381 for the paper's "3.81% RMSE"). A
// zero-mean truth falls back to the unnormalized RMSE.
func RelativeRMSE(predicted, truth []float64) (float64, error) {
	rmse, err := RMSE(predicted, truth)
	if err != nil {
		return 0, err
	}
	var denom float64
	for _, t := range truth {
		denom += math.Abs(t)
	}
	denom /= float64(len(truth))
	if denom == 0 {
		return rmse, nil
	}
	return rmse / denom, nil
}

// EmpiricalQuantile returns the q-th empirical quantile of xs (q in [0, 1])
// using linear interpolation between order statistics. It returns an error
// for an empty sample or q outside [0, 1]. xs is not modified.
func EmpiricalQuantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile probability %v out of [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// CoverageFraction reports the fraction of xs lying within [lo, hi]. An
// empty sample covers vacuously (returns 1).
func CoverageFraction(xs []float64, lo, hi float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	in := 0
	for _, v := range xs {
		if v >= lo && v <= hi {
			in++
		}
	}
	return float64(in) / float64(len(xs))
}

// KSStatistic returns the Kolmogorov-Smirnov statistic of xs against the
// normal distribution dist: the largest absolute gap between the empirical
// CDF and the fitted CDF. The paper attributes UPA's residual error to the
// neighbouring outputs "not perfectly following a normal distribution"
// (§VI-C); this statistic quantifies exactly that per query.
func KSStatistic(xs []float64, dist Normal) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: KS statistic of empty sample")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	worst := 0.0
	for i, v := range sorted {
		cdf := dist.CDF(v)
		// The empirical CDF jumps at v from i/n to (i+1)/n; both sides of
		// the jump bound the supremum.
		lo := math.Abs(cdf - float64(i)/n)
		hi := math.Abs(float64(i+1)/n - cdf)
		worst = math.Max(worst, math.Max(lo, hi))
	}
	return worst, nil
}

// Histogram is a fixed-width binning of a sample, used by the Figure 3
// reproduction to render neighbouring-output distributions as text.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // values below Lo
	Over   int // values above Hi
}

// NewHistogram bins xs into bins equal-width buckets over [lo, hi]. It
// returns an error if bins < 1 or the interval is empty.
func NewHistogram(xs []float64, lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram needs at least one bin, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram interval [%v, %v] is empty", lo, hi)
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, v := range xs {
		switch {
		case v < lo:
			h.Under++
		case v > hi:
			h.Over++
		default:
			i := int((v - lo) / width)
			if i == bins { // v == hi lands in the last bin
				i = bins - 1
			}
			h.Counts[i]++
		}
	}
	return h, nil
}

// MaxCount returns the largest bin count (0 for an all-empty histogram).
func (h *Histogram) MaxCount() int {
	m := 0
	for _, c := range h.Counts {
		if c > m {
			m = c
		}
	}
	return m
}
