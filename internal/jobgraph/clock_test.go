package jobgraph

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock hands out strictly increasing, fully deterministic instants.
type fakeClock struct {
	mu    sync.Mutex
	ticks int64
	base  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ticks++
	return c.base.Add(time.Duration(c.ticks) * time.Second)
}

func TestWithClockStampsSpans(t *testing.T) {
	clock := &fakeClock{base: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	g := New("clocked", WithClock(clock.Now)).
		Stage("a", noop).
		Stage("b", noop, "a")
	spans, err := g.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, s := range spans {
		if !s.Start.After(clock.base) || !s.End.After(s.Start.Add(-time.Nanosecond)) {
			t.Errorf("stage %q: span [%v, %v] not stamped by the injected clock", s.Stage, s.Start, s.End)
		}
		if s.Start.Nanosecond() != 0 || s.End.Nanosecond() != 0 {
			t.Errorf("stage %q: span [%v, %v] carries wall-clock precision; expected whole fake ticks", s.Stage, s.Start, s.End)
		}
		if s.Duration()%time.Second != 0 {
			t.Errorf("stage %q: duration %v is not a whole number of fake ticks", s.Stage, s.Duration())
		}
	}
	// Dependent stage b starts only after a ends: its tick must be later.
	if !spans[1].Start.After(spans[0].End.Add(-time.Nanosecond)) {
		t.Errorf("stage b start %v precedes stage a end %v", spans[1].Start, spans[0].End)
	}
}

func TestWithClockNilKeepsDefault(t *testing.T) {
	g := New("defaulted", WithClock(nil)).Stage("a", noop)
	if g.now == nil {
		t.Fatal("WithClock(nil) cleared the default clock")
	}
	spans, err := g.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if spans[0].Start.IsZero() || spans[0].End.IsZero() {
		t.Errorf("default clock left zero span times: %+v", spans[0])
	}
}
