package mapreduce

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// SortBy globally sorts the dataset by the given less function into
// numParts contiguous partitions. Like Spark's sortBy it is a wide
// transformation: all records move (one shuffle round), then each output
// partition holds a contiguous range of the sorted order.
//
// The sort is stable, so records comparing equal keep their source order —
// which keeps every downstream result deterministic.
func SortBy[T any](d *Dataset[T], numParts int, less func(a, b T) bool) (*Dataset[T], error) {
	if numParts < 1 {
		return nil, fmt.Errorf("mapreduce: numParts must be >= 1, got %d", numParts)
	}
	shared := &sortedOnce[T]{}
	return &Dataset[T]{
		eng:      d.eng,
		numParts: numParts,
		name:     d.name + ".sortBy",
		compute: func(p int) ([]T, error) {
			sorted, err := shared.get(d, less)
			if err != nil {
				return nil, err
			}
			lo, hi := sliceBounds(len(sorted), numParts, p)
			return sorted[lo:hi], nil
		},
	}, nil
}

// sortedOnce materializes and sorts the parent once, shared by all output
// partitions.
type sortedOnce[T any] struct {
	mu     sync.Mutex
	done   bool
	sorted []T
	err    error
}

func (s *sortedOnce[T]) get(d *Dataset[T], less func(a, b T) bool) ([]T, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return s.sorted, s.err
	}
	s.done = true
	all, err := d.Collect()
	if err != nil {
		s.err = err
		return nil, err
	}
	owned := make([]T, len(all))
	copy(owned, all)
	sort.SliceStable(owned, func(i, j int) bool { return less(owned[i], owned[j]) })
	d.eng.AccountShuffle(len(owned))
	s.sorted = owned
	return s.sorted, nil
}

// Top returns the k greatest records under less (the analogue of Spark's
// top action): a per-partition selection followed by a final merge, without
// a full shuffle.
func Top[T any](d *Dataset[T], k int, less func(a, b T) bool) ([]T, error) {
	if k < 0 {
		return nil, fmt.Errorf("mapreduce: negative k %d", k)
	}
	if k == 0 {
		return nil, nil
	}
	partTops := make([][]T, d.numParts)
	err := d.eng.runTasks(context.Background(), d.numParts, func(p int) error {
		part, err := d.partition(p)
		if err != nil {
			return err
		}
		local := make([]T, len(part))
		copy(local, part)
		sort.SliceStable(local, func(i, j int) bool { return less(local[j], local[i]) })
		if len(local) > k {
			local = local[:k]
		}
		partTops[p] = local
		return nil
	})
	if err != nil {
		return nil, err
	}
	var merged []T
	for _, t := range partTops {
		merged = append(merged, t...)
	}
	sort.SliceStable(merged, func(i, j int) bool { return less(merged[j], merged[i]) })
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged, nil
}
