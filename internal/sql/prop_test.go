package sql

import (
	"fmt"
	"testing"

	"upa/internal/stats"
)

// TestOptimizerPreservesMultisets is the optimizer's property test: over
// seeded random plans on seeded random tables, Execute (optimized) and
// ExecuteRaw (as written) must return identical row multisets under the
// same schema. The generator stays inside the total fragment — no division
// and no mixed-kind comparisons — because predicate pushdown may evaluate a
// sub-predicate on rows the raw plan never showed it, which is only
// observable through runtime errors (see the contract note in optimize.go).
// All numeric values are small integers, so float Sum/Avg accumulation is
// exact and order-independent.
func TestOptimizerPreservesMultisets(t *testing.T) {
	const plans = 80
	for i := 0; i < plans; i++ {
		i := i
		t.Run(fmt.Sprintf("plan%02d", i), func(t *testing.T) {
			g := &planGen{rng: stats.NewRNG(0x9E3779B97F4A7C15).Split(uint64(i))}
			plan := g.plan()
			t.Logf("plan: %s", Describe(plan))
			rewrites := assertSameMultiset(t, plan)
			t.Logf("rewrites: %d", len(rewrites))
		})
	}
}

// planGen builds random plans over small random tables.
type planGen struct {
	rng *stats.RNG
	// schema of the plan built so far
	cols Schema
}

// plan generates one random plan: a base (scan or join of two scans, each
// side optionally filtered) under a random chain of unary operators.
func (g *planGen) plan() Plan {
	p := g.base()
	ops := g.rng.Intn(4)
	for i := 0; i < ops; i++ {
		p = g.unary(p)
	}
	return p
}

// base returns either a single scan or a two-scan join, with column names
// globally unique so every optimizer rule is eligible to fire.
func (g *planGen) base() Plan {
	left := g.table("l", 5+g.rng.Intn(16))
	if g.rng.Intn(3) == 0 {
		g.cols = left.Cols
		return g.maybeFilter(left)
	}
	right := g.table("r", 2+g.rng.Intn(10))
	lp := g.withSchema(left.Cols, func() Plan { return g.maybeFilter(left) })
	rp := g.withSchema(right.Cols, func() Plan { return g.maybeFilter(right) })
	g.cols = append(append(Schema{}, left.Cols...), right.Cols...)
	return JoinOn(lp, "l_key", rp, "r_key")
}

// table builds a random relation: an int join key with a small domain (so
// joins fan out), an int, a float holding small integer values, a string
// from a small alphabet, and a bool.
func (g *planGen) table(prefix string, n int) *ScanPlan {
	cols := Schema{
		{Name: prefix + "_key", Kind: KindInt},
		{Name: prefix + "_i", Kind: KindInt},
		{Name: prefix + "_f", Kind: KindFloat},
		{Name: prefix + "_s", Kind: KindString},
		{Name: prefix + "_b", Kind: KindBool},
	}
	letters := []string{"a", "b", "c"}
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			Int(int64(g.rng.Intn(5))),
			Int(int64(g.rng.Intn(20))),
			Float(float64(g.rng.Intn(10))),
			Str(letters[g.rng.Intn(len(letters))]),
			Bool(g.rng.Intn(2) == 0),
		}
	}
	return Scan(prefix+"tab", cols, rows)
}

// withSchema runs build with g.cols temporarily set to schema.
func (g *planGen) withSchema(schema Schema, build func() Plan) Plan {
	saved := g.cols
	g.cols = schema
	p := build()
	g.cols = saved
	return p
}

func (g *planGen) maybeFilter(p Plan) Plan {
	if g.rng.Intn(2) == 0 {
		return Where(p, g.pred(2))
	}
	return p
}

// unary wraps p in a random unary operator, updating g.cols to the new
// output schema.
func (g *planGen) unary(p Plan) Plan {
	switch g.rng.Intn(6) {
	case 0:
		return Where(p, g.pred(2))
	case 1:
		return g.project(p)
	case 2:
		return g.aggregate(p)
	case 3:
		return OrderBy(p, SortKey{Column: g.col().Name, Desc: g.rng.Intn(2) == 0})
	case 4:
		return Distinct(p)
	default:
		return Limit(p, g.rng.Intn(12))
	}
}

// project keeps a random non-empty subset of columns and may add one
// arithmetic column over the numeric ones.
func (g *planGen) project(p Plan) Plan {
	keep := g.rng.Intn(len(g.cols)) + 1
	perm := g.rng.Perm(len(g.cols))[:keep]
	// Keep schema order deterministic: sort the kept indices.
	for i := 0; i < len(perm); i++ {
		for j := i + 1; j < len(perm); j++ {
			if perm[j] < perm[i] {
				perm[i], perm[j] = perm[j], perm[i]
			}
		}
	}
	exprs := make([]NamedExpr, 0, keep+1)
	out := make(Schema, 0, keep+1)
	for _, idx := range perm {
		c := g.cols[idx]
		exprs = append(exprs, NamedExpr{Name: c.Name, Expr: Col(c.Name)})
		out = append(out, c)
	}
	if a, ok := g.arith(); ok && g.rng.Intn(2) == 0 {
		exprs = append(exprs, NamedExpr{Name: "derived", Expr: a})
		out = append(out, Column{Name: "derived", Kind: KindFloat})
	}
	g.cols = out
	return Project(p, exprs...)
}

func (g *planGen) aggregate(p Plan) Plan {
	groupCol := g.col()
	specs := []AggSpec{{Name: "cnt", Func: AggCount}}
	out := Schema{groupCol, {Name: "cnt", Kind: KindInt}}
	if num, ok := g.numericCol(); ok {
		funcs := []AggFunc{AggSum, AggAvg, AggMin, AggMax}
		f := funcs[g.rng.Intn(len(funcs))]
		specs = append(specs, AggSpec{Name: "agg", Func: f, Arg: Col(num.Name)})
		out = append(out, Column{Name: "agg", Kind: KindFloat})
	}
	g.cols = out
	return GroupBy(p, []string{groupCol.Name}, specs...)
}

// pred builds a random boolean expression of the given depth over g.cols.
func (g *planGen) pred(depth int) Expr {
	if depth > 0 && g.rng.Intn(2) == 0 {
		a, b := g.pred(depth-1), g.pred(depth-1)
		switch g.rng.Intn(3) {
		case 0:
			return And(a, b)
		case 1:
			return Or(a, b)
		default:
			return Not(a)
		}
	}
	return g.comparison()
}

// comparison builds a leaf predicate: a same-kind column/literal or
// column/column comparison, a bool column, or (rarely) a constant bool.
func (g *planGen) comparison() Expr {
	if g.rng.Intn(10) == 0 {
		return Lit(Bool(g.rng.Intn(2) == 0))
	}
	c := g.col()
	cmp := func(a, b Expr) Expr {
		switch g.rng.Intn(6) {
		case 0:
			return Eq(a, b)
		case 1:
			return Ne(a, b)
		case 2:
			return Lt(a, b)
		case 3:
			return Le(a, b)
		case 4:
			return Gt(a, b)
		default:
			return Ge(a, b)
		}
	}
	switch c.Kind {
	case KindBool:
		return Col(c.Name)
	case KindString:
		letters := []string{"a", "b", "c"}
		return cmp(Col(c.Name), Lit(Str(letters[g.rng.Intn(len(letters))])))
	case KindFloat:
		return cmp(Col(c.Name), Lit(Float(float64(g.rng.Intn(10)))))
	default:
		if other, ok := g.otherNumericCol(c.Name); ok && g.rng.Intn(3) == 0 {
			return cmp(Col(c.Name), Col(other.Name))
		}
		return cmp(Col(c.Name), Lit(Int(int64(g.rng.Intn(20)))))
	}
}

// arith builds a random error-free arithmetic expression over the numeric
// columns (no division).
func (g *planGen) arith() (Expr, bool) {
	num, ok := g.numericCol()
	if !ok {
		return nil, false
	}
	e := Expr(Col(num.Name))
	switch g.rng.Intn(3) {
	case 0:
		e = Add(e, Lit(Float(float64(g.rng.Intn(5)))))
	case 1:
		e = Mul(e, Lit(Float(float64(g.rng.Intn(4)))))
	default:
		e = Sub(e, Lit(Float(float64(g.rng.Intn(5)))))
	}
	return e, true
}

func (g *planGen) col() Column {
	return g.cols[g.rng.Intn(len(g.cols))]
}

func (g *planGen) numericCol() (Column, bool) {
	var numeric []Column
	for _, c := range g.cols {
		if c.Kind == KindInt || c.Kind == KindFloat {
			numeric = append(numeric, c)
		}
	}
	if len(numeric) == 0 {
		return Column{}, false
	}
	return numeric[g.rng.Intn(len(numeric))], true
}

func (g *planGen) otherNumericCol(not string) (Column, bool) {
	var numeric []Column
	for _, c := range g.cols {
		if (c.Kind == KindInt || c.Kind == KindFloat) && c.Name != not {
			numeric = append(numeric, c)
		}
	}
	if len(numeric) == 0 {
		return Column{}, false
	}
	return numeric[g.rng.Intn(len(numeric))], true
}
