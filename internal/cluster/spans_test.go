package cluster

import (
	"testing"
	"time"

	"upa/internal/jobgraph"
)

// testModel prices with round numbers: 10 cores, 100ns/record-op, 1 Gbps,
// 1ms barriers and task overhead, 10ms startup.
func testModel() Model {
	return Model{
		Nodes: 2, CoresPerNode: 5, RecordCPU: 100 * time.Nanosecond,
		RecordBytes: 125, BisectionGbps: 1,
		ShuffleLatency: time.Millisecond, TaskOverhead: time.Millisecond,
		JobStartup: 10 * time.Millisecond,
	}
}

func TestPriceSpanComponents(t *testing.T) {
	m := testModel()
	c, err := m.PriceSpan(jobgraph.Span{
		Stage:           "shuffle-stage",
		Records:         5000,
		ReduceOps:       5000,
		ShuffledRecords: 1_000_000,
		ShuffleBytes:    125_000_000, // 1e9 bits over 1 Gbps = 1s
		Attempts:        20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.CPU != 100*time.Microsecond {
		t.Errorf("CPU = %v, want 100µs", c.CPU)
	}
	if c.Network != time.Second {
		t.Errorf("Network = %v, want 1s", c.Network)
	}
	if c.Barriers != time.Millisecond {
		t.Errorf("Barriers = %v, want one shuffle latency", c.Barriers)
	}
	// ceil(20 attempts / 2 nodes) = 10 waves.
	if c.Scheduler != 10*time.Millisecond {
		t.Errorf("Scheduler = %v, want 10ms", c.Scheduler)
	}
	if c.Startup != 0 {
		t.Errorf("span charged startup %v; startup is per-plan", c.Startup)
	}
}

func TestPriceSpanChargesRetries(t *testing.T) {
	m := testModel()
	c, err := m.PriceSpan(jobgraph.Span{
		Stage:        "retried-stage",
		Attempts:     4,
		Retries:      3,
		BackoffNanos: int64(2 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 retries × 1ms rescheduling + 2ms waited in backoff.
	if c.Retry != 5*time.Millisecond {
		t.Errorf("Retry = %v, want 5ms", c.Retry)
	}
	// ceil(4/2) = 2 scheduling waves still price the attempts themselves.
	if c.Scheduler != 2*time.Millisecond {
		t.Errorf("Scheduler = %v, want 2ms", c.Scheduler)
	}
	if c.Total() != c.Retry+c.Scheduler {
		t.Error("Total does not include the retry surcharge")
	}
}

func TestPriceSpanChargesCombineCPU(t *testing.T) {
	m := testModel()
	// A combining stage pays CPU for every pre-combine record it folded on
	// the mappers: 10000 records at 100ns over 10 cores = 100µs on top of
	// the plain span's cost.
	plain, err := m.PriceSpan(jobgraph.Span{Stage: "s", Records: 5000})
	if err != nil {
		t.Fatal(err)
	}
	combining, err := m.PriceSpan(jobgraph.Span{
		Stage: "s", Records: 5000,
		RecordsPreCombine: 10000, RecordsPostCombine: 2000, RecordsCombined: 8000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := combining.CPU - plain.CPU; got != 100*time.Microsecond {
		t.Errorf("combine CPU surcharge = %v, want 100µs", got)
	}
	if combining.Network != plain.Network {
		t.Errorf("combine changed network cost: %v vs %v (only ShuffledRecords pays network)",
			combining.Network, plain.Network)
	}
}

func TestPriceSpanFallsBackToRecordBytes(t *testing.T) {
	m := testModel()
	c, err := m.PriceSpan(jobgraph.Span{Stage: "s", ShuffledRecords: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	// 1e6 records * 125 bytes * 8 = 1e9 bits over 1 Gbps = 1s.
	if c.Network != time.Second {
		t.Errorf("fallback Network = %v, want 1s", c.Network)
	}
}

func TestPricePlanCriticalPath(t *testing.T) {
	m := testModel()
	// a (1M ops) feeds b (5M ops) and c (1M ops); d joins both. The critical
	// path must run through b.
	spans := []jobgraph.Span{
		{Stage: "a", Records: 1_000_000, Attempts: 1},
		{Stage: "b", Deps: []string{"a"}, Records: 5_000_000, Attempts: 1},
		{Stage: "c", Deps: []string{"a"}, Records: 1_000_000, Attempts: 1},
		{Stage: "d", Deps: []string{"b", "c"}, Records: 1_000_000, Attempts: 1},
	}
	plan, err := m.PricePlan(spans)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "d"}
	if len(plan.CriticalPath) != len(want) {
		t.Fatalf("critical path = %v, want %v", plan.CriticalPath, want)
	}
	for i, s := range want {
		if plan.CriticalPath[i] != s {
			t.Fatalf("critical path = %v, want %v", plan.CriticalPath, want)
		}
	}
	// Pipelined total skips c's cost; sequential pays it.
	if plan.Total >= plan.Sequential {
		t.Errorf("pipelined plan %v not cheaper than sequential %v", plan.Total, plan.Sequential)
	}
	// 1M record-ops * 100ns / 10 cores = 10ms CPU per unit stage; path
	// a+b+d = 7 units of CPU + 3 waves + startup.
	wantTotal := 70*time.Millisecond + 3*time.Millisecond + m.JobStartup
	if plan.Total != wantTotal {
		t.Errorf("Total = %v, want %v", plan.Total, wantTotal)
	}
	wantSeq := 80*time.Millisecond + 4*time.Millisecond + m.JobStartup
	if plan.Sequential != wantSeq {
		t.Errorf("Sequential = %v, want %v", plan.Sequential, wantSeq)
	}
}

func TestPricePlanRejectsBadPlans(t *testing.T) {
	m := testModel()
	if _, err := m.PricePlan([]jobgraph.Span{{Stage: "a"}, {Stage: "a"}}); err == nil {
		t.Error("duplicate stage accepted")
	}
	if _, err := m.PricePlan([]jobgraph.Span{{Stage: "a", Deps: []string{"ghost"}}}); err == nil {
		t.Error("unknown dependency accepted")
	}
	cyclic := []jobgraph.Span{
		{Stage: "a", Deps: []string{"b"}},
		{Stage: "b", Deps: []string{"a"}},
	}
	if _, err := m.PricePlan(cyclic); err == nil {
		t.Error("cyclic plan accepted")
	}
}

func TestPricePlanEmpty(t *testing.T) {
	m := testModel()
	plan, err := m.PricePlan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Total != m.JobStartup || plan.Sequential != m.JobStartup {
		t.Errorf("empty plan priced at %v/%v, want bare startup", plan.Total, plan.Sequential)
	}
}
