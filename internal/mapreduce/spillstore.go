package mapreduce

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
)

// spillStore is the engine's memory-budget accountant and temp-file
// allocator. Every materialization that would retain records in memory
// (source partitions, persisted datasets, shuffle buckets, sorted runs)
// first asks admit; past the budget the materialization is written to
// deterministic length-prefixed temp files instead and read back on demand.
//
// The temp directory is created lazily on the first spill, so engines that
// never exceed their budget (including every engine with the default
// unlimited budget) touch no disk at all. Close removes the directory.
type spillStore struct {
	metrics *Metrics

	// budget is the in-memory byte ceiling: negative means unlimited, zero
	// spills every materialization. retained is the running total of bytes
	// admitted in memory; it is never decremented — an engine is scoped to
	// a job or serving session, and once its working set has filled the
	// budget, later materializations belong on disk.
	budget   int64
	retained atomic.Int64

	// seq disambiguates stores whose datasets share a lineage name (two
	// independent "source" datasets must not overwrite each other's files).
	seq atomic.Uint64

	mu     sync.Mutex
	dir    string
	closed bool
}

// admit reports whether a materialization of estimated size n may stay in
// memory, reserving the bytes if so.
func (st *spillStore) admit(n int64) bool {
	if st.budget < 0 {
		return true
	}
	for {
		cur := st.retained.Load()
		if cur+n > st.budget {
			return false
		}
		if st.retained.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// ensureDir lazily creates the spill directory.
func (st *spillStore) ensureDir() (string, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return "", fmt.Errorf("mapreduce: spill store closed")
	}
	if st.dir == "" {
		dir, err := os.MkdirTemp("", "upa-spill-*")
		if err != nil {
			return "", fmt.Errorf("mapreduce: create spill dir: %w", err)
		}
		st.dir = dir
	}
	return st.dir, nil
}

// close removes the spill directory and everything in it. Idempotent.
func (st *spillStore) close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.closed = true
	if st.dir == "" {
		return nil
	}
	dir := st.dir
	st.dir = ""
	return os.RemoveAll(dir)
}

// write spills recs under a deterministic file name: write to a .tmp
// sibling, then rename, so a file either exists complete or not at all and
// a retried task rewriting its spill lands the identical bytes atomically.
func spillWrite[T any](st *spillStore, name string, recs []T) (string, error) {
	dir, err := st.ensureDir()
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", err
	}
	n, err := writeSpill(f, recs)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return "", err
	}
	st.metrics.SpillFiles.Add(1)
	st.metrics.SpilledBytes.Add(n)
	return path, nil
}

// spillRead reads a whole spill file back as an owned slice.
func spillRead[T any](st *spillStore, path string, count int) ([]T, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: open spill: %w", err)
	}
	defer f.Close()
	st.metrics.SpillReads.Add(1)
	return readSpill[T](f, count)
}

// spillOpen opens a streaming reader over a spill file. The caller owns the
// returned close function.
func spillOpen[T any](st *spillStore, path string) (*spillReader[T], func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("mapreduce: open spill: %w", err)
	}
	st.metrics.SpillReads.Add(1)
	return newSpillReader[T](f), f.Close, nil
}

// sanitizeSite turns a lineage site name into a file-name-safe fragment.
func sanitizeSite(site string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, site)
}

// partStore holds one stage's materialized partitions (or shuffle buckets):
// either shared in-memory slices, or one spill file per index. It is
// immutable after construction, so concurrent partition reads need no lock.
type partStore[T any] struct {
	eng    *Engine
	mem    [][]T    // in-memory representation (nil when spilled)
	files  []string // files[i] is index i's spill file (nil when in memory)
	counts []int
}

// storeParts admits parts against the engine's memory budget, keeping them
// in memory when they fit and spilling one deterministic file per index —
// named <seq>-<site>-<index>.spill — when they do not. On a partial write
// failure every file already written is removed, so a failed (and later
// retried) materialization leaks nothing.
func storeParts[T any](eng *Engine, site string, parts [][]T) (*partStore[T], error) {
	counts := make([]int, len(parts))
	for i, p := range parts {
		counts[i] = len(p)
	}
	if eng.spill.admit(estimatePartsBytes(parts)) {
		return &partStore[T]{eng: eng, mem: parts, counts: counts}, nil
	}
	prefix := fmt.Sprintf("%06d-%s", eng.spill.seq.Add(1), sanitizeSite(site))
	files := make([]string, len(parts))
	for i, p := range parts {
		path, err := spillWrite(eng.spill, fmt.Sprintf("%s-%04d.spill", prefix, i), p)
		if err != nil {
			for _, written := range files[:i] {
				os.Remove(written)
			}
			return nil, err
		}
		files[i] = path
	}
	return &partStore[T]{eng: eng, files: files, counts: counts}, nil
}

// get returns partition i: the shared in-memory slice (callers must treat
// it as read-only, as with every engine-materialized partition) or an owned
// slice decoded from the spill file.
func (s *partStore[T]) get(i int) ([]T, error) {
	if s.mem != nil {
		return s.mem[i], nil
	}
	return spillRead[T](s.eng.spill, s.files[i], s.counts[i])
}

// count reports partition i's record count without reading it.
func (s *partStore[T]) count(i int) int { return s.counts[i] }

// spilled reports whether the store's partitions live on disk.
func (s *partStore[T]) spilled() bool { return s.mem == nil }

// Size estimation. The budget gates which representation a materialization
// gets, not any release value, so an approximation is fine — but it must be
// a pure function of the data (never of timing or scheduling) or the spill
// decision itself would be nondeterministic for a fixed budget and input.
// estimateRecords samples up to sizeSampleRecords records, walks each with
// reflectSize, and extrapolates the mean; estimatePartsBytes sums that over
// the partitions.
const (
	sizeSampleRecords = 8
	sizeSampleElems   = 32
	sizeMaxDepth      = 4
)

func estimatePartsBytes[T any](parts [][]T) int64 {
	var total int64
	for _, p := range parts {
		total += estimateRecords(p)
	}
	return total
}

func estimateRecords[T any](recs []T) int64 {
	if len(recs) == 0 {
		return 0
	}
	stride := len(recs) / sizeSampleRecords
	if stride == 0 {
		stride = 1
	}
	var sampled, n int64
	for i := 0; i < len(recs); i += stride {
		sampled += reflectSize(reflect.ValueOf(recs[i]), sizeMaxDepth)
		n++
	}
	return sampled / n * int64(len(recs))
}

// reflectSize approximates the in-memory footprint of one value: the static
// type size plus the referenced bytes behind strings, slices, maps,
// pointers, and interfaces, sampling long containers and extrapolating.
func reflectSize(v reflect.Value, depth int) int64 {
	if !v.IsValid() {
		return 0
	}
	t := v.Type()
	size := int64(t.Size())
	if depth <= 0 {
		return size
	}
	switch v.Kind() {
	case reflect.String:
		size += int64(v.Len())
	case reflect.Slice:
		size += containerSize(v, depth)
	case reflect.Array:
		if elemHasPointers(t.Elem()) {
			size += containerSize(v, depth) - int64(t.Size())
		}
	case reflect.Map:
		n := v.Len()
		if n == 0 {
			break
		}
		sample := n
		if sample > sizeSampleElems {
			sample = sizeSampleElems
		}
		var per int64
		iter := v.MapRange()
		for i := 0; i < sample && iter.Next(); i++ {
			per += reflectSize(iter.Key(), depth-1) + reflectSize(iter.Value(), depth-1)
		}
		size += per / int64(sample) * int64(n)
	case reflect.Pointer, reflect.Interface:
		if !v.IsNil() {
			size += reflectSize(v.Elem(), depth-1)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			switch f.Kind() {
			case reflect.String, reflect.Slice, reflect.Map, reflect.Pointer, reflect.Interface, reflect.Struct, reflect.Array:
				// Static field size is already inside t.Size(); add only the
				// referenced bytes behind it.
				size += reflectSize(f, depth-1) - int64(f.Type().Size())
			}
		}
	}
	return size
}

// containerSize sums the dynamic footprint of a slice or array's elements,
// sampling long ones.
func containerSize(v reflect.Value, depth int) int64 {
	n := v.Len()
	if n == 0 {
		return 0
	}
	elem := v.Type().Elem()
	if !elemHasPointers(elem) {
		return int64(elem.Size()) * int64(n)
	}
	sample := n
	if sample > sizeSampleElems {
		sample = sizeSampleElems
	}
	var per int64
	for i := 0; i < sample; i++ {
		per += reflectSize(v.Index(i), depth-1)
	}
	return per / int64(sample) * int64(n)
}

// elemHasPointers reports whether a container element type drags referenced
// memory behind it (and so needs per-element walking).
func elemHasPointers(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return false
	default:
		return true
	}
}
