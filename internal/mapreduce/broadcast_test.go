package mapreduce

import (
	"sync"
	"testing"
)

func TestBroadcast(t *testing.T) {
	eng := NewEngine(WithWorkers(4))
	b, err := NewBroadcast(eng, map[string]int{"a": 1, "b": 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Value()["a"] != 1 || b.Records() != 2 {
		t.Fatalf("broadcast payload wrong: %v / %d", b.Value(), b.Records())
	}
	m := eng.Metrics()
	if m.BroadcastsSent != 1 {
		t.Errorf("BroadcastsSent = %d, want 1", m.BroadcastsSent)
	}
	if m.BroadcastRecords != 2*4 { // records × workers
		t.Errorf("BroadcastRecords = %d, want 8", m.BroadcastRecords)
	}
	if _, err := NewBroadcast(eng, 0, -1); err == nil {
		t.Error("negative cardinality accepted")
	}
}

func TestBroadcastMap(t *testing.T) {
	eng := NewEngine(WithWorkers(2))
	pairs := []Pair[int, string]{{Key: 1, Value: "x"}, {Key: 2, Value: "y"}, {Key: 1, Value: "z"}}
	b, err := BroadcastMap(eng, pairs)
	if err != nil {
		t.Fatal(err)
	}
	// Last-wins for duplicate keys; two distinct keys.
	if len(b.Value()) != 2 || b.Value()[1] != "z" {
		t.Fatalf("broadcast map = %v", b.Value())
	}
	if b.Records() != 2 {
		t.Errorf("Records = %d, want 2", b.Records())
	}
}

func TestBroadcastUsedInsideTasks(t *testing.T) {
	eng := NewEngine()
	lookup, err := BroadcastMap(eng, []Pair[int, int]{{Key: 0, Value: 100}, {Key: 1, Value: 200}})
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromSlice(eng, intsUpTo(50), 4)
	if err != nil {
		t.Fatal(err)
	}
	mapped := Map(d, func(x int) int { return lookup.Value()[x%2] })
	sum, err := Reduce(mapped, func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 25*100+25*200 {
		t.Fatalf("sum through broadcast = %d", sum)
	}
}

func TestAccumulator(t *testing.T) {
	eng := NewEngine()
	acc, err := NewAccumulator(eng, "filtered-rows")
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromSlice(eng, intsUpTo(100), 8)
	if err != nil {
		t.Fatal(err)
	}
	kept := Filter(d, func(x int) bool {
		if x%3 == 0 {
			acc.Add(1)
			return false
		}
		return true
	})
	n, err := kept.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 66 {
		t.Fatalf("kept %d rows, want 66", n)
	}
	if acc.Value() != 34 {
		t.Fatalf("accumulator = %d, want 34", acc.Value())
	}
	if got := eng.Accumulators()["filtered-rows"]; got != 34 {
		t.Fatalf("registry value = %d, want 34", got)
	}
}

func TestAccumulatorValidation(t *testing.T) {
	eng := NewEngine()
	if _, err := NewAccumulator(eng, ""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewAccumulator(eng, "dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewAccumulator(eng, "dup"); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestAccumulatorConcurrent(t *testing.T) {
	eng := NewEngine()
	acc, err := NewAccumulator(eng, "hits")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				acc.Add(1)
			}
		}()
	}
	wg.Wait()
	if acc.Value() != 8000 {
		t.Fatalf("accumulator = %d, want 8000", acc.Value())
	}
}
