package chaos

import (
	"math"
	"sync/atomic"
	"time"
)

// RetryPolicy governs how the engine and the jobgraph scheduler respond to
// retryable failures: how many attempts each task gets, how long to back off
// between them (exponential with seeded jitter, so backoff schedules are as
// reproducible as the faults that trigger them), how long one attempt may
// run, and how many retries one whole job may spend before failing fast.
//
// The zero value is usable but degenerate (one attempt, no backoff, no
// deadline, unlimited budget); DefaultRetryPolicy matches the engine's
// historical behaviour.
type RetryPolicy struct {
	// MaxAttempts bounds the tries per task (first attempt included).
	// Values below one behave as one.
	MaxAttempts int
	// BaseBackoff is the pre-jitter wait before the first retry; each
	// further retry doubles it, capped at MaxBackoff (when positive).
	// Zero disables backoff entirely.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter spreads each backoff uniformly over [1-Jitter, 1+Jitter]
	// times its nominal value, deterministically per (site, task, attempt)
	// under JitterSeed. Values outside [0, 1] are clamped.
	Jitter     float64
	JitterSeed uint64
	// TaskDeadline bounds one attempt's runtime. An attempt exceeding it
	// is cancelled and counts as a retryable failure (the parent context's
	// own expiry stays terminal). Zero disables the deadline.
	TaskDeadline time.Duration
	// RetryBudget bounds the total retries of one job (one runTasks call,
	// one shuffle materialization, or one jobgraph run — each makes its
	// own Budget). Once exhausted the next failure is terminal, so a
	// systemically sick job fails fast instead of thrashing through every
	// task's full attempt allowance. Zero means unlimited.
	RetryBudget int
}

// DefaultRetryPolicy is the engine's historical contract: three attempts,
// immediate retry, no deadline, unlimited budget.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3}
}

// Attempts returns MaxAttempts clamped to at least one.
func (p RetryPolicy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the wait before retry number `retry` (1-based: the wait
// between the first failure and the second attempt is retry 1) of `task` at
// `site`. Exponential in the retry number with a deterministic seeded
// jitter.
func (p RetryPolicy) Backoff(site string, task, retry int) time.Duration {
	if p.BaseBackoff <= 0 {
		return 0
	}
	if retry < 1 {
		retry = 1
	}
	d := float64(p.BaseBackoff) * math.Pow(2, float64(retry-1))
	if p.MaxBackoff > 0 && d > float64(p.MaxBackoff) {
		d = float64(p.MaxBackoff)
	}
	if j := p.jitter(); j > 0 {
		h := mix64(p.JitterSeed ^ mix64(hashString(site)^uint64(task)) ^ uint64(retry))
		d *= 1 - j + 2*j*uniform(h)
	}
	if d < 0 {
		return 0
	}
	return time.Duration(d)
}

func (p RetryPolicy) jitter() float64 {
	switch {
	case p.Jitter < 0:
		return 0
	case p.Jitter > 1:
		return 1
	default:
		return p.Jitter
	}
}

// NewBudget returns the per-job retry allowance this policy grants.
func (p RetryPolicy) NewBudget() *Budget {
	b := &Budget{unlimited: p.RetryBudget <= 0}
	if !b.unlimited {
		b.remaining.Store(int64(p.RetryBudget))
	}
	return b
}

// Budget is one job's shared retry allowance. Safe for concurrent use; a
// nil Budget is unlimited.
type Budget struct {
	unlimited bool
	remaining atomic.Int64
	used      atomic.Int64
}

// Take consumes one retry from the budget, reporting false once exhausted.
func (b *Budget) Take() bool {
	if b == nil {
		return true
	}
	if b.unlimited {
		b.used.Add(1)
		return true
	}
	for {
		r := b.remaining.Load()
		if r <= 0 {
			return false
		}
		if b.remaining.CompareAndSwap(r, r-1) {
			b.used.Add(1)
			return true
		}
	}
}

// Used reports how many retries the job has spent.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}
