package analysis

import (
	"go/ast"
	"go/token"
)

// Lock scan: an ordered statement walker that tracks the set of mutex
// names held at each point of a function body and reports accesses to
// //upa:guardedby fields (and calls to functions whose summaries require
// locks) that are not covered.
//
// Semantics, kept deliberately simple:
//   - `x.mu.Lock()` / `x.mu.RLock()` as a statement adds "mu" to the held
//     set; Unlock/RUnlock removes it. Lock identity is the mutex *field
//     name* — fine-grained enough for this repository, where every guarded
//     struct embeds its own `mu`.
//   - `defer x.mu.Unlock()` keeps the lock held for the rest of the body
//     (the idiomatic lock-for-the-whole-function shape).
//   - Branch bodies (if/else, for, range, switch, select cases) see a copy
//     of the held set; mutations inside them do not escape. Sequential
//     statements in one block share the set.
//   - Function literals are scanned separately with an empty held set:
//     a closure runs at an unknown time, so it must lock for itself (or
//     carry a justified //upa:allow).
//   - Functions whose name ends in *Locked are exempt from acquiring: the
//     locks they touch become their RequiresLocks summary, checked at
//     every call site instead.

// LockNeed is one uncovered access: a guarded field touched, or a
// requires-lock callee invoked, without the named mutex held.
type LockNeed struct {
	Pos  token.Pos
	Lock string
	Desc string
}

type lockScan struct {
	mod   *Module
	fi    *FuncInfo
	needs []LockNeed
	seen  map[token.Pos]bool
	// skipSel marks selector nodes that are method names of calls (not
	// field reads).
	skipSel map[*ast.SelectorExpr]bool
}

func newLockScan(m *Module, fi *FuncInfo) *lockScan {
	return &lockScan{mod: m, fi: fi, seen: make(map[token.Pos]bool), skipSel: make(map[*ast.SelectorExpr]bool)}
}

func (ls *lockScan) run() {
	if ls.fi.Decl.Body == nil {
		return
	}
	ls.stmts(ls.fi.Decl.Body.List, map[string]bool{})
}

// runClosure scans one function literal body with an empty held set.
func (ls *lockScan) runClosure(lit *ast.FuncLit) {
	ls.stmts(lit.Body.List, map[string]bool{})
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// lockOpName decodes a call of the form <expr>.<mu>.Lock() and returns the
// mutex field/variable name and whether it acquires (Lock/RLock) or
// releases (Unlock/RUnlock).
func lockOpName(call *ast.CallExpr) (mu string, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	var op bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = true
	case "Unlock", "RUnlock":
		op = false
	default:
		return "", false, false
	}
	switch base := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		return base.Sel.Name, op, true
	case *ast.Ident:
		return base.Name, op, true
	}
	return "", false, false
}

// stmts walks one statement list with a shared held set.
func (ls *lockScan) stmts(list []ast.Stmt, held map[string]bool) {
	for _, st := range list {
		ls.stmt(st, held)
	}
}

func (ls *lockScan) stmt(st ast.Stmt, held map[string]bool) {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if mu, acquire, ok := lockOpName(call); ok {
				if acquire {
					held[mu] = true
				} else {
					delete(held, mu)
				}
				return
			}
		}
		ls.check(s.X, held)
	case *ast.DeferStmt:
		if mu, acquire, ok := lockOpName(s.Call); ok && !acquire {
			// defer mu.Unlock(): held until return.
			_ = mu
			return
		}
		ls.check(s.Call, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			ls.check(e, held)
		}
		for _, e := range s.Lhs {
			ls.check(e, held)
		}
	case *ast.DeclStmt:
		ls.check(s.Decl, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			ls.check(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			ls.stmt(s.Init, held)
		}
		ls.check(s.Cond, held)
		ls.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			ls.stmt(s.Else, copyHeld(held))
		}
	case *ast.BlockStmt:
		ls.stmts(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			ls.stmt(s.Init, held)
		}
		if s.Cond != nil {
			ls.check(s.Cond, held)
		}
		inner := copyHeld(held)
		if s.Post != nil {
			ls.stmt(s.Post, inner)
		}
		ls.stmts(s.Body.List, inner)
	case *ast.RangeStmt:
		ls.check(s.X, held)
		ls.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			ls.stmt(s.Init, held)
		}
		if s.Tag != nil {
			ls.check(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					ls.check(e, held)
				}
				ls.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			ls.stmt(s.Init, held)
		}
		ls.stmt(s.Assign, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := copyHeld(held)
				if cc.Comm != nil {
					ls.stmt(cc.Comm, inner)
				}
				ls.stmts(cc.Body, inner)
			}
		}
	case *ast.GoStmt:
		// The goroutine runs concurrently: current locks do not cover it.
		ls.checkWithHeld(s.Call, map[string]bool{})
	case *ast.LabeledStmt:
		ls.stmt(s.Stmt, held)
	case *ast.SendStmt:
		ls.check(s.Chan, held)
		ls.check(s.Value, held)
	case *ast.IncDecStmt:
		ls.check(s.X, held)
	}
}

// check inspects an expression (or declaration) subtree under the current
// held set. Function literals are collected and scanned with an empty set.
func (ls *lockScan) check(n ast.Node, held map[string]bool) {
	ls.checkWithHeld(n, held)
}

func (ls *lockScan) checkWithHeld(n ast.Node, held map[string]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			ls.runClosure(e)
			return false
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				ls.skipSel[sel] = true
			}
			ls.checkCall(e, held)
		case *ast.SelectorExpr:
			if ls.skipSel[e] {
				return true
			}
			ls.checkFieldAccess(e, held)
		}
		return true
	})
}

// checkCall verifies the callee's RequiresLocks summary against held.
func (ls *lockScan) checkCall(call *ast.CallExpr, held map[string]bool) {
	if _, _, isLockOp := lockOpName(call); isLockOp {
		return
	}
	callee := ls.mod.ResolveCall(ls.fi.Pkg, call, nil)
	sum := ls.mod.SummaryForCallee(callee)
	if sum == nil {
		return
	}
	for _, lock := range sum.RequiresLocks {
		if held[lock] {
			continue
		}
		ls.need(call.Pos(), lock,
			"call to "+callee.Name+" requires holding "+lock+" (caller-must-hold summary)")
	}
}

// checkFieldAccess reports guarded-field reads/writes without the lock.
func (ls *lockScan) checkFieldAccess(sel *ast.SelectorExpr, held map[string]bool) {
	name := sel.Sel.Name
	annotations := ls.mod.GuardedFieldsFor(name)
	if len(annotations) == 0 {
		return
	}
	pkgPath, typeName, ok := ls.mod.receiverType(ls.fi.Pkg, sel.X)
	if !ok {
		return
	}
	for _, g := range annotations {
		if g.Pkg != pkgPath || g.Struct != typeName {
			continue
		}
		if held[g.Lock] {
			return
		}
		ls.need(sel.Sel.Pos(), g.Lock,
			"access to "+g.Struct+"."+g.Field+" (guarded by "+g.Lock+") without holding "+g.Lock)
		return
	}
}

func (ls *lockScan) need(pos token.Pos, lock, desc string) {
	if ls.seen[pos] {
		return
	}
	ls.seen[pos] = true
	ls.needs = append(ls.needs, LockNeed{Pos: pos, Lock: lock, Desc: desc})
}

// LockNeeds runs the lock scan over fi and returns the uncovered accesses
// — the lockdiscipline analyzer's per-function entry point. The caller
// decides whether the needs are diagnostics (ordinary functions) or the
// function's exported contract (*Locked helpers).
func (m *Module) LockNeeds(fi *FuncInfo) []LockNeed {
	m.computeSummaries()
	ls := newLockScan(m, fi)
	ls.run()
	return ls.needs
}
