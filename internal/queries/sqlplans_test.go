package queries

import (
	"math"
	"testing"

	"upa/internal/mapreduce"
	"upa/internal/sql"
)

// TestSQLPlansMatchMappers cross-validates the relational plans against the
// hand-written Mapper/Reducer query forms the DP path executes: both layers
// must compute identical answers on the same database.
func TestSQLPlansMatchMappers(t *testing.T) {
	w := testWorkload(t)
	eng := mapreduce.NewEngine()

	tests := []struct {
		name   string
		plan   sql.Plan
		runner Runner
	}{
		{"TPCH1", TPCH1Plan(w.DB), w.TPCH1()},
		{"TPCH4", TPCH4Plan(w.DB), w.TPCH4()},
		{"TPCH13", TPCH13Plan(w.DB), w.TPCH13()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			n, err := sql.ExecuteCount(eng, tt.plan)
			if err != nil {
				t.Fatalf("ExecuteCount: %v", err)
			}
			out, err := tt.runner.RunVanilla(eng)
			if err != nil {
				t.Fatalf("RunVanilla: %v", err)
			}
			if float64(n) != out[0] {
				t.Fatalf("SQL plan = %d, Mapper/Reducer = %v", n, out[0])
			}
		})
	}
}

func TestTPCH6PlanMatchesMapper(t *testing.T) {
	w := testWorkload(t)
	eng := mapreduce.NewEngine()
	rows, _, err := sql.Execute(eng, TPCH6Plan(w.DB))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("TPCH6 plan returned %d rows", len(rows))
	}
	got, _ := rows[0][0].AsFloat()
	out, err := w.TPCH6().RunVanilla(eng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-out[0]) > 1e-6*math.Max(1, out[0]) {
		t.Fatalf("SQL plan = %v, Mapper/Reducer = %v", got, out[0])
	}
}

func TestTPCH1FullPlan(t *testing.T) {
	w := testWorkload(t)
	eng := mapreduce.NewEngine()
	rows, schema, err := sql.Execute(eng, TPCH1FullPlan(w.DB))
	if err != nil {
		t.Fatal(err)
	}
	if len(schema) != 10 {
		t.Fatalf("schema has %d columns, want 10", len(schema))
	}
	// Reference computation per (returnflag, linestatus) group.
	type agg struct {
		qty, price, disc, discPrice, charge float64
		n                                   float64
	}
	ref := map[[2]string]*agg{}
	for _, l := range w.DB.Lineitems {
		if l.ShipDate > tpch1Cutoff {
			continue
		}
		k := [2]string{l.ReturnFlag, l.LineStatus}
		a := ref[k]
		if a == nil {
			a = &agg{}
			ref[k] = a
		}
		a.qty += l.Quantity
		a.price += l.ExtendedPrice
		a.disc += l.Discount
		dp := l.ExtendedPrice * (1 - l.Discount)
		a.discPrice += dp
		a.charge += dp * (1 + l.Tax)
		a.n++
	}
	if len(rows) != len(ref) {
		t.Fatalf("%d groups, want %d", len(rows), len(ref))
	}
	prevKey := ""
	for _, r := range rows {
		rf, _ := r[0].AsString()
		ls, _ := r[1].AsString()
		key := rf + "|" + ls
		if key < prevKey {
			t.Fatalf("ORDER BY broken: %q after %q", key, prevKey)
		}
		prevKey = key
		a := ref[[2]string{rf, ls}]
		if a == nil {
			t.Fatalf("unexpected group %q/%q", rf, ls)
		}
		checks := []struct {
			col  int
			want float64
		}{
			{2, a.qty}, {3, a.price}, {4, a.discPrice}, {5, a.charge},
			{6, a.qty / a.n}, {7, a.price / a.n}, {8, a.disc / a.n},
		}
		for _, c := range checks {
			got, _ := r[c.col].AsFloat()
			if math.Abs(got-c.want) > 1e-6*math.Max(1, math.Abs(c.want)) {
				t.Fatalf("group %s/%s column %d = %v, want %v", rf, ls, c.col, got, c.want)
			}
		}
		if n, _ := r[9].AsInt(); float64(n) != a.n {
			t.Fatalf("group %s/%s count = %d, want %v", rf, ls, n, a.n)
		}
	}
}

// TestSQLFLEXExtractionMatchesHandBuilt verifies that walking the plan tree
// yields the same FLEX sensitivity as the hand-built plan metadata for the
// single-join count queries.
func TestSQLFLEXExtractionMatchesHandBuilt(t *testing.T) {
	w := testWorkload(t)
	eng := mapreduce.NewEngine()

	tests := []struct {
		name   string
		plan   sql.Plan
		runner Runner
	}{
		{"TPCH4", TPCH4Plan(w.DB), w.TPCH4()},
		{"TPCH13", TPCH13Plan(w.DB), w.TPCH13()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			fromSQL, err := sql.FLEXPlan(eng, tt.name, tt.plan)
			if err != nil {
				t.Fatal(err)
			}
			if !fromSQL.CountQuery {
				t.Fatal("count plan not detected")
			}
			handBuilt, err := tt.runner.FLEXPlan(eng)
			if err != nil {
				t.Fatal(err)
			}
			sqlSens, err := fromSQL.LocalSensitivity()
			if err != nil {
				t.Fatal(err)
			}
			handSens, err := handBuilt.LocalSensitivity()
			if err != nil {
				t.Fatal(err)
			}
			if sqlSens != handSens {
				t.Fatalf("FLEX sensitivity from plan tree = %v, hand-built = %v", sqlSens, handSens)
			}
		})
	}
}

func TestTPCH6PlanNotFLEXSupported(t *testing.T) {
	w := testWorkload(t)
	p, err := sql.FLEXPlan(mapreduce.NewEngine(), "TPCH6", TPCH6Plan(w.DB))
	if err != nil {
		t.Fatal(err)
	}
	if p.CountQuery {
		t.Fatal("sum plan detected as count")
	}
}
