package serve

import (
	"encoding/json"
	"fmt"

	"upa/internal/sql"
)

// This file decodes the wire form of a relational plan — the body of
// POST /query — into an internal/sql Plan over a registry of named base
// relations. The wire AST mirrors the sql constructors one-to-one:
//
//	{"op":"aggregate","aggs":[{"name":"n","func":"count"}],
//	 "input":{"op":"filter",
//	          "pred":{"op":"lt","left":{"col":"l_commitdate"},
//	                           "right":{"col":"l_receiptdate"}},
//	          "input":{"op":"scan","table":"lineitem"}}}
//
// Scans reference tables by name only — analysts never ship rows — and
// resolve against the service's table registry, so a plan can only read
// relations the operator chose to expose.

// planNode is the wire form of one plan operator.
type planNode struct {
	Op string `json:"op"`
	// scan
	Table string `json:"table,omitempty"`
	// unary operators
	Input *planNode `json:"input,omitempty"`
	// filter
	Pred *exprNode `json:"pred,omitempty"`
	// project
	Exprs []namedExprNode `json:"exprs,omitempty"`
	// join
	Left     *planNode `json:"left,omitempty"`
	Right    *planNode `json:"right,omitempty"`
	LeftKey  string    `json:"leftKey,omitempty"`
	RightKey string    `json:"rightKey,omitempty"`
	// aggregate
	GroupBy []string  `json:"groupBy,omitempty"`
	Aggs    []aggNode `json:"aggs,omitempty"`
	// limit
	N int `json:"n,omitempty"`
	// orderby
	Keys []sortKeyNode `json:"keys,omitempty"`
}

// namedExprNode is one projected expression.
type namedExprNode struct {
	Name string    `json:"name"`
	Expr *exprNode `json:"expr"`
}

// aggNode is one aggregate spec.
type aggNode struct {
	Name string    `json:"name"`
	Func string    `json:"func"`
	Arg  *exprNode `json:"arg,omitempty"`
}

// sortKeyNode is one ORDER BY key.
type sortKeyNode struct {
	Column string `json:"column"`
	Desc   bool   `json:"desc,omitempty"`
}

// exprNode is the wire form of one scalar expression. Exactly one of the
// shorthand fields (col / one literal) or op must be set.
type exprNode struct {
	// Shorthand: {"col":"l_quantity"} references a column.
	Col string `json:"col,omitempty"`
	// Shorthand literals: {"int":3}, {"float":0.5}, {"str":"x"}, {"bool":true}.
	Int   *int64   `json:"int,omitempty"`
	Float *float64 `json:"float,omitempty"`
	Str   *string  `json:"str,omitempty"`
	Bool  *bool    `json:"bool,omitempty"`
	// Operators: and/or/not, eq/ne/lt/le/gt/ge, add/sub/mul/div.
	Op    string    `json:"op,omitempty"`
	Left  *exprNode `json:"left,omitempty"`
	Right *exprNode `json:"right,omitempty"`
	// not
	Input *exprNode `json:"input,omitempty"`
}

// DecodePlan parses the wire form of a plan and resolves its scans against
// tables. Errors are analyst errors (malformed AST, unknown table/operator)
// and map to 400s.
func DecodePlan(raw []byte, tables map[string]*sql.ScanPlan) (sql.Plan, error) {
	var node planNode
	if err := json.Unmarshal(raw, &node); err != nil {
		return nil, fmt.Errorf("serve: malformed plan JSON: %w", err)
	}
	return buildPlan(&node, tables)
}

func buildPlan(n *planNode, tables map[string]*sql.ScanPlan) (sql.Plan, error) {
	if n == nil {
		return nil, fmt.Errorf("serve: missing plan node")
	}
	unary := func() (sql.Plan, error) { return buildPlan(n.Input, tables) }
	switch n.Op {
	case "scan":
		scan, ok := tables[n.Table]
		if !ok {
			return nil, fmt.Errorf("serve: unknown table %q", n.Table)
		}
		return scan, nil
	case "filter":
		in, err := unary()
		if err != nil {
			return nil, err
		}
		pred, err := buildExpr(n.Pred)
		if err != nil {
			return nil, err
		}
		return sql.Where(in, pred), nil
	case "project":
		in, err := unary()
		if err != nil {
			return nil, err
		}
		exprs := make([]sql.NamedExpr, len(n.Exprs))
		for i, ne := range n.Exprs {
			e, err := buildExpr(ne.Expr)
			if err != nil {
				return nil, err
			}
			if ne.Name == "" {
				return nil, fmt.Errorf("serve: projection %d has no name", i)
			}
			exprs[i] = sql.NamedExpr{Name: ne.Name, Expr: e}
		}
		return sql.Project(in, exprs...), nil
	case "join":
		left, err := buildPlan(n.Left, tables)
		if err != nil {
			return nil, err
		}
		right, err := buildPlan(n.Right, tables)
		if err != nil {
			return nil, err
		}
		if n.LeftKey == "" || n.RightKey == "" {
			return nil, fmt.Errorf("serve: join needs leftKey and rightKey")
		}
		return sql.JoinOn(left, n.LeftKey, right, n.RightKey), nil
	case "aggregate":
		in, err := unary()
		if err != nil {
			return nil, err
		}
		aggs := make([]sql.AggSpec, len(n.Aggs))
		for i, a := range n.Aggs {
			fn, err := aggFuncOf(a.Func)
			if err != nil {
				return nil, err
			}
			spec := sql.AggSpec{Name: a.Name, Func: fn}
			if a.Arg != nil {
				arg, err := buildExpr(a.Arg)
				if err != nil {
					return nil, err
				}
				spec.Arg = arg
			}
			aggs[i] = spec
		}
		return sql.GroupBy(in, n.GroupBy, aggs...), nil
	case "distinct":
		in, err := unary()
		if err != nil {
			return nil, err
		}
		return sql.Distinct(in), nil
	case "limit":
		in, err := unary()
		if err != nil {
			return nil, err
		}
		return sql.Limit(in, n.N), nil
	case "orderby":
		in, err := unary()
		if err != nil {
			return nil, err
		}
		keys := make([]sql.SortKey, len(n.Keys))
		for i, k := range n.Keys {
			keys[i] = sql.SortKey{Column: k.Column, Desc: k.Desc}
		}
		return sql.OrderBy(in, keys...), nil
	case "":
		return nil, fmt.Errorf("serve: plan node missing \"op\"")
	default:
		return nil, fmt.Errorf("serve: unknown plan operator %q", n.Op)
	}
}

func aggFuncOf(name string) (sql.AggFunc, error) {
	switch name {
	case "count":
		return sql.AggCount, nil
	case "sum":
		return sql.AggSum, nil
	case "avg":
		return sql.AggAvg, nil
	case "min":
		return sql.AggMin, nil
	case "max":
		return sql.AggMax, nil
	default:
		return 0, fmt.Errorf("serve: unknown aggregate function %q", name)
	}
}

func buildExpr(n *exprNode) (sql.Expr, error) {
	if n == nil {
		return nil, fmt.Errorf("serve: missing expression")
	}
	// Shorthands first: a node with col or a literal field set is a leaf.
	if n.Col != "" {
		return sql.Col(n.Col), nil
	}
	switch {
	case n.Int != nil:
		return sql.Lit(sql.Int(*n.Int)), nil
	case n.Float != nil:
		return sql.Lit(sql.Float(*n.Float)), nil
	case n.Str != nil:
		return sql.Lit(sql.Str(*n.Str)), nil
	case n.Bool != nil:
		return sql.Lit(sql.Bool(*n.Bool)), nil
	}
	if n.Op == "not" {
		in, err := buildExpr(n.Input)
		if err != nil {
			return nil, err
		}
		return sql.Not(in), nil
	}
	binary := map[string]func(a, b sql.Expr) sql.Expr{
		"add": sql.Add, "sub": sql.Sub, "mul": sql.Mul, "div": sql.Div,
		"eq": sql.Eq, "ne": sql.Ne, "lt": sql.Lt, "le": sql.Le, "gt": sql.Gt, "ge": sql.Ge,
		"and": sql.And, "or": sql.Or,
	}
	build, ok := binary[n.Op]
	if !ok {
		if n.Op == "" {
			return nil, fmt.Errorf("serve: expression node is neither a column, a literal, nor an operator")
		}
		return nil, fmt.Errorf("serve: unknown expression operator %q", n.Op)
	}
	left, err := buildExpr(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := buildExpr(n.Right)
	if err != nil {
		return nil, err
	}
	return build(left, right), nil
}
