// Package tpch generates deterministic, synthetic TPC-H-like tables at
// laptop scale. It substitutes for the paper's 114–133 GB TPC-H datasets:
// sensitivity behaviour depends on the distributional shape (join-key
// frequencies, filter selectivity), which the generator reproduces with
// explicit skew knobs, not on absolute data volume.
package tpch

import (
	"fmt"

	"upa/internal/stats"
)

// Date is a day count since 1992-01-01, the TPC-H epoch. Seven years of
// dates span [0, 2557).
type Date int

// Dates per year, approximated as in TPC-H's uniform date draws.
const (
	DaysPerYear = 365
	DateMax     = 7 * DaysPerYear
)

// Year returns the calendar year of the date (1992-based).
func (d Date) Year() int { return 1992 + int(d)/DaysPerYear }

// Priorities, flags and statuses mirror the TPC-H value domains the nine
// queries filter on.
var (
	orderPriorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipModes       = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	returnFlags     = []string{"R", "A", "N"}
	nationNames     = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES",
	}
	partBrands     = []string{"Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#45", "Brand#55"}
	partTypePre    = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	partTypeMid    = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	partTypeSuf    = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	partContainers = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PKG", "WRAP PACK"}
)

// Lineitem is the protected fact table of most TPC-H queries.
type Lineitem struct {
	OrderKey      int
	PartKey       int
	SuppKey       int
	LineNumber    int
	Quantity      float64
	ExtendedPrice float64
	Discount      float64
	Tax           float64
	ReturnFlag    string
	LineStatus    string
	ShipDate      Date
	CommitDate    Date
	ReceiptDate   Date
	ShipMode      string
}

// Order is a TPC-H orders row.
type Order struct {
	OrderKey      int
	CustKey       int
	OrderStatus   string
	TotalPrice    float64
	OrderDate     Date
	OrderPriority string
	// SpecialRequest marks the comment pattern Q13 excludes
	// ('%special%requests%').
	SpecialRequest bool
}

// Customer is a TPC-H customer row.
type Customer struct {
	CustKey    int
	NationKey  int
	MktSegment string
}

// Part is a TPC-H part row.
type Part struct {
	PartKey   int
	Brand     string
	Type      string
	Size      int
	Container string
}

// Supplier is a TPC-H supplier row.
type Supplier struct {
	SuppKey   int
	NationKey int
	// Complaint marks the comment pattern Q16 excludes
	// ('%Customer%Complaints%').
	Complaint bool
}

// PartSupp is a TPC-H partsupp row.
type PartSupp struct {
	PartKey    int
	SuppKey    int
	AvailQty   int
	SupplyCost float64
}

// Nation is a TPC-H nation row.
type Nation struct {
	NationKey int
	Name      string
}

// Config controls the generator. Row counts derive from Lineitems with the
// usual TPC-H ratios; Skew in [0, 1) is the probability that a foreign key
// is drawn from a small hot set, which concentrates join-key frequency the
// way FLEX's worst-case analysis is sensitive to.
type Config struct {
	Lineitems int
	Skew      float64
	Seed      uint64
}

// DefaultConfig returns the evaluation default: 20k lineitems with moderate
// key skew.
func DefaultConfig() Config {
	return Config{Lineitems: 20000, Skew: 0.2, Seed: 1}
}

// DB is a fully generated database.
type DB struct {
	Config    Config
	Lineitems []Lineitem
	Orders    []Order
	Customers []Customer
	Parts     []Part
	Suppliers []Supplier
	PartSupps []PartSupp
	Nations   []Nation
}

// Generate builds the database deterministically from cfg.
func Generate(cfg Config) (*DB, error) {
	if cfg.Lineitems < 1 {
		return nil, fmt.Errorf("tpch: Lineitems must be >= 1, got %d", cfg.Lineitems)
	}
	if cfg.Skew < 0 || cfg.Skew >= 1 {
		return nil, fmt.Errorf("tpch: Skew must be in [0, 1), got %v", cfg.Skew)
	}
	db := &DB{Config: cfg}

	nOrders := max(cfg.Lineitems/4, 1)
	nCustomers := max(nOrders/10, 1)
	nParts := max(cfg.Lineitems/8, 1)
	nSuppliers := max(nParts/10, 1)
	nPartSupps := nParts * 2

	root := stats.NewRNG(cfg.Seed)

	db.Nations = make([]Nation, len(nationNames))
	for i, name := range nationNames {
		db.Nations[i] = Nation{NationKey: i, Name: name}
	}

	db.Customers = genCustomers(root.Split(1), nCustomers, len(nationNames))
	db.Suppliers = genSuppliers(root.Split(2), nSuppliers, len(nationNames))
	db.Parts = genParts(root.Split(3), nParts)
	db.Orders = genOrders(root.Split(4), nOrders, nCustomers, cfg.Skew)
	db.PartSupps = genPartSupps(root.Split(5), nPartSupps, nParts, nSuppliers, cfg.Skew)
	db.Lineitems = genLineitems(root.Split(6), cfg.Lineitems, nOrders, nParts, nSuppliers, cfg.Skew)
	return db, nil
}

// skewedKey draws a key in [0, n): with probability skew from a hot set of
// about 1% of the keys (at least 1), otherwise uniformly.
func skewedKey(rng *stats.RNG, n int, skew float64) int {
	if n <= 1 {
		return 0
	}
	if skew > 0 && rng.Float64() < skew {
		hot := max(n/100, 1)
		return rng.Intn(hot)
	}
	return rng.Intn(n)
}

func genCustomers(rng *stats.RNG, n, nations int) []Customer {
	segments := []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	out := make([]Customer, n)
	for i := range out {
		out[i] = Customer{
			CustKey:    i,
			NationKey:  rng.Intn(nations),
			MktSegment: segments[rng.Intn(len(segments))],
		}
	}
	return out
}

func genSuppliers(rng *stats.RNG, n, nations int) []Supplier {
	out := make([]Supplier, n)
	for i := range out {
		out[i] = Supplier{
			SuppKey:   i,
			NationKey: rng.Intn(nations),
			Complaint: rng.Float64() < 0.05,
		}
	}
	return out
}

func genParts(rng *stats.RNG, n int) []Part {
	out := make([]Part, n)
	for i := range out {
		out[i] = Part{
			PartKey: i,
			Brand:   partBrands[rng.Intn(len(partBrands))],
			Type: partTypePre[rng.Intn(len(partTypePre))] + " " +
				partTypeMid[rng.Intn(len(partTypeMid))] + " " +
				partTypeSuf[rng.Intn(len(partTypeSuf))],
			Size:      1 + rng.Intn(50),
			Container: partContainers[rng.Intn(len(partContainers))],
		}
	}
	return out
}

func genOrders(rng *stats.RNG, n, nCustomers int, skew float64) []Order {
	statuses := []string{"F", "O", "P"}
	out := make([]Order, n)
	for i := range out {
		out[i] = Order{
			OrderKey:       i,
			CustKey:        skewedKey(rng, nCustomers, skew),
			OrderStatus:    statuses[rng.Intn(len(statuses))],
			TotalPrice:     1000 + rng.Float64()*500000,
			OrderDate:      Date(rng.Intn(DateMax - 151)),
			OrderPriority:  orderPriorities[rng.Intn(len(orderPriorities))],
			SpecialRequest: rng.Float64() < 0.1,
		}
	}
	return out
}

func genPartSupps(rng *stats.RNG, n, nParts, nSuppliers int, skew float64) []PartSupp {
	out := make([]PartSupp, n)
	for i := range out {
		out[i] = PartSupp{
			PartKey:    skewedKey(rng, nParts, skew),
			SuppKey:    skewedKey(rng, nSuppliers, skew),
			AvailQty:   1 + rng.Intn(9999),
			SupplyCost: 1 + rng.Float64()*999,
		}
	}
	return out
}

func genLineitems(rng *stats.RNG, n, nOrders, nParts, nSuppliers int, skew float64) []Lineitem {
	out := make([]Lineitem, n)
	for i := range out {
		ship := Date(rng.Intn(DateMax - 60))
		commit := ship + Date(rng.Intn(60)) - 30
		if commit < 0 {
			commit = 0
		}
		receipt := ship + 1 + Date(rng.Intn(30))
		price := 900 + rng.Float64()*100000
		out[i] = Lineitem{
			OrderKey:      skewedKey(rng, nOrders, skew),
			PartKey:       skewedKey(rng, nParts, skew),
			SuppKey:       skewedKey(rng, nSuppliers, skew),
			LineNumber:    i,
			Quantity:      1 + float64(rng.Intn(50)),
			ExtendedPrice: price,
			Discount:      float64(rng.Intn(11)) / 100,
			Tax:           float64(rng.Intn(9)) / 100,
			ReturnFlag:    returnFlags[rng.Intn(len(returnFlags))],
			LineStatus:    pick(rng, "O", "F"),
			ShipDate:      ship,
			CommitDate:    commit,
			ReceiptDate:   receipt,
			ShipMode:      shipModes[rng.Intn(len(shipModes))],
		}
	}
	return out
}

func pick(rng *stats.RNG, a, b string) string {
	if rng.Float64() < 0.5 {
		return a
	}
	return b
}

// RandomLineitem draws a fresh lineitem from the record domain D, used by
// UPA to sample the "addition" neighbouring datasets (records in D but not
// in x). The key ranges match the database's.
func (db *DB) RandomLineitem(rng *stats.RNG) Lineitem {
	return genLineitems(rng, 1, len(db.Orders), len(db.Parts), len(db.Suppliers), db.Config.Skew)[0]
}

// RandomOrder draws a fresh order from the record domain.
func (db *DB) RandomOrder(rng *stats.RNG) Order {
	o := genOrders(rng, 1, len(db.Customers), db.Config.Skew)[0]
	// A fresh order gets a fresh key beyond the existing range so it joins
	// with no pre-existing lineitems, like a newly inserted order would.
	o.OrderKey = len(db.Orders) + rng.Intn(1<<20)
	return o
}

// RandomPartSupp draws a fresh partsupp row from the record domain.
func (db *DB) RandomPartSupp(rng *stats.RNG) PartSupp {
	return genPartSupps(rng, 1, len(db.Parts), len(db.Suppliers), db.Config.Skew)[0]
}
