package serve

import (
	"fmt"
	"math"
	"sync"
)

// CachedRelease is the tenant-independent part of a published release — the
// payload the cache stores and the journal persists. Everything here is
// already DP-protected output or public metadata, so serving it again (to
// any tenant) discloses nothing new and spends no ε: the noise was drawn
// once, for this exact (fingerprint, protected, ε, seed), and re-randomizing
// it would
// only hand an attacker fresh observations of the same sensitive value.
type CachedRelease struct {
	// Query names the released plan (the request's plan name, or a
	// fingerprint-derived handle for ad-hoc plans).
	Query string `json:"query"`
	// Fingerprint is the canonical plan identity (sql.Fingerprint).
	Fingerprint string `json:"fingerprint"`
	// Epsilon and Seed complete the cache key.
	Epsilon float64 `json:"epsilon"`
	Seed    uint64  `json:"seed"`
	// Output is the noisy released vector; SampleSize the effective n.
	Output     []float64 `json:"output"`
	SampleSize int       `json:"sampleSize"`
	// Charged is the ε the original admission spent — what every cache hit
	// avoids re-spending.
	Charged float64 `json:"charged"`
}

// CacheKey derives the release-cache key from the canonical plan
// fingerprint, the protected relation, the exact ε bits (no formatting
// round-trip), and the seed. The protected table is part of the identity,
// not a detail: for multi-table plans it selects whose records the release
// protects, which changes the influence set and sensitivity — the same
// (plan, ε, seed) protecting a different relation is a different release.
func CacheKey(fingerprint, protected string, epsilon float64, seed uint64) string {
	return fmt.Sprintf("%s|%s|%016x|%d", fingerprint, protected, math.Float64bits(epsilon), seed)
}

// Cache is the bounded release cache. Eviction is FIFO over insertion
// order — dashboards re-request recent releases, and FIFO keeps replay
// deterministic (replaying the same journal reproduces the same resident
// set, in order, regardless of hit patterns).
type Cache struct {
	mu      sync.Mutex
	cap     int                      // immutable after NewCache
	entries map[string]CachedRelease //upa:guardedby(mu)
	order   []string                 //upa:guardedby(mu)
	hits    uint64                   //upa:guardedby(mu)
	misses  uint64                   //upa:guardedby(mu)
}

// NewCache returns a cache bounded to capacity entries (values below one
// fall back to one).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, entries: make(map[string]CachedRelease)}
}

// lookup returns the cached release for key, if resident.
func (c *Cache) lookup(key string) (CachedRelease, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rel, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return rel, ok
}

// store inserts the release under key, evicting the oldest entry past
// capacity. Re-storing a resident key refreshes the payload in place.
func (c *Cache) store(key string, rel CachedRelease) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.storeLocked(key, rel)
}

func (c *Cache) storeLocked(key string, rel CachedRelease) {
	if _, ok := c.entries[key]; !ok {
		c.order = append(c.order, key)
		for len(c.order) > c.cap {
			evict := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, evict)
		}
	}
	c.entries[key] = rel
}

// replay inserts a journal-replayed release without touching hit/miss
// accounting.
func (c *Cache) replay(key string, rel CachedRelease) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.storeLocked(key, rel)
}

// Len reports the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats reports cumulative lookup hits and misses.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// compact renders the resident entries as replayable journal entries in
// insertion order.
func (c *Cache) compact() []entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]entry, 0, len(c.order))
	for _, key := range c.order {
		rel := c.entries[key]
		out = append(out, entry{Kind: entryRelease, Key: key, Release: &rel})
	}
	return out
}
