package core

import (
	"encoding/json"
	"testing"
)

// releaseOutputs is the deterministic surface of a release: everything the
// pipeline computes before and after enforcement, excluding wall-clock spans
// and engine counters (which legitimately differ under faults).
type releaseOutputs struct {
	Output, RawOutput, VanillaOutput          []float64
	Sensitivity, RangeLo, RangeHi             []float64
	RemovalOutputs, AdditionOutputs           [][]float64
	GroupRemovalOutputs, GroupAdditionOutputs [][]float64
	RemovedRecords, ClampedCoords             int
	AttackSuspected                           bool
}

func outputsOf(res *Result) releaseOutputs {
	return releaseOutputs{
		Output: res.Output, RawOutput: res.RawOutput, VanillaOutput: res.VanillaOutput,
		Sensitivity: res.Sensitivity, RangeLo: res.RangeLo, RangeHi: res.RangeHi,
		RemovalOutputs: res.RemovalOutputs, AdditionOutputs: res.AdditionOutputs,
		GroupRemovalOutputs: res.GroupRemovalOutputs, GroupAdditionOutputs: res.GroupAdditionOutputs,
		RemovedRecords: res.RemovedRecords, ClampedCoords: res.ClampedCoords,
		AttackSuspected: res.AttackSuspected,
	}
}

// TestFaultyWarmCacheReleaseIsDeterministic is the lineage-retry determinism
// check: a release on an engine with injected faults AND a warm reduction
// cache (left by an earlier release) must produce byte-identical outputs to
// the same release on a fault-free system. Task retries recompute partitions
// through lineage, and the commit-closure discipline of partitioned stages
// means a re-executed attempt publishes the same bytes — so faults may cost
// time, never correctness.
func TestFaultyWarmCacheReleaseIsDeterministic(t *testing.T) {
	data := seqData(600)
	domain := uniformDomain(0, 600)

	runPair := func(faults int) *Result {
		sys := newTestSystem(t, nil)
		// First release warms the engine's reduction cache (and advances the
		// enforcer history) with a different query, so the second release
		// runs against a non-empty cache without tripping the attack path.
		if _, err := Run(sys, countQuery(), data, domain); err != nil {
			t.Fatal(err)
		}
		if faults > 0 {
			// Two faults against the default three-attempt budget: retries
			// fire, but no task can exhaust its budget.
			sys.Engine().InjectFaults(faults)
		}
		res, err := Run(sys, sumQuery(), data, domain)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	clean := runPair(0)
	faulty := runPair(2)

	cleanJSON, err := json.Marshal(outputsOf(clean))
	if err != nil {
		t.Fatal(err)
	}
	faultyJSON, err := json.Marshal(outputsOf(faulty))
	if err != nil {
		t.Fatal(err)
	}
	if string(cleanJSON) != string(faultyJSON) {
		t.Errorf("faulty release diverged from clean release:\n clean: %s\nfaulty: %s",
			cleanJSON, faultyJSON)
	}
	if got := faulty.EngineDelta.TaskFaults; got < 2 {
		t.Errorf("TaskFaults = %d, want >= 2 (faults not exercised)", got)
	}
	if faulty.EngineDelta.TaskAttempts <= faulty.EngineDelta.TasksRun {
		t.Errorf("no retries recorded: attempts %d, runs %d",
			faulty.EngineDelta.TaskAttempts, faulty.EngineDelta.TasksRun)
	}
	// The release's spans still cover the whole DAG despite retries.
	if len(faulty.Spans) != len(clean.Spans) {
		t.Errorf("span counts differ: %d faulty vs %d clean", len(faulty.Spans), len(clean.Spans))
	}
}

// TestReleaseSpansSurface checks the Result carries the full stage DAG with
// the counters the cost model prices.
func TestReleaseSpansSurface(t *testing.T) {
	sys := newTestSystem(t, nil)
	res, err := Run(sys, countQuery(), seqData(400), uniformDomain(0, 400))
	if err != nil {
		t.Fatal(err)
	}
	if res.Release != 1 {
		t.Errorf("Release = %d, want 1", res.Release)
	}
	want := map[string]bool{
		StagePartitionSample: false, StageBulkReduce: false, StageMapSamples: false,
		StageMapAdditions: false, StagePrefixSuffix: false, StageNeighbourDeltas: false,
		StageNeighbourJoin: false, StageFit: false, StageEnforce: false, StagePerturb: false,
	}
	for _, s := range res.Spans {
		if _, ok := want[s.Stage]; !ok {
			t.Errorf("unexpected stage %q", s.Stage)
			continue
		}
		want[s.Stage] = true
		if s.Duration() < 0 || s.Start.IsZero() || s.End.IsZero() {
			t.Errorf("stage %q has no timing: %+v", s.Stage, s)
		}
		if s.Attempts < 1 {
			t.Errorf("stage %q ran %d attempts", s.Stage, s.Attempts)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("stage %q missing from spans", name)
		}
	}
	var hits, shuffled int64
	for _, s := range res.Spans {
		hits += s.CacheHits
		shuffled += s.ShuffledRecords
	}
	if hits < int64(res.SampleSize) {
		t.Errorf("spans report %d cache hits, want >= n = %d", hits, res.SampleSize)
	}
	if shuffled < 400 {
		t.Errorf("spans report %d shuffled records, want >= input size", shuffled)
	}
}
