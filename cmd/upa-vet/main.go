// Command upa-vet runs UPA's seven invariant analyzers (reducerpurity,
// ctxpropagation, epsiloncharge, seededdeterminism, dpflow, lockdiscipline,
// errorwrap) over the module.
//
// Standalone mode — the primary interface — checks the module rooted at the
// given directory (default ".") and exits 1 if any diagnostic survives
// //upa:allow suppression:
//
//	go build -o upa-vet ./cmd/upa-vet && ./upa-vet ./...
//
// Flags:
//
//	-raw   disable //upa:allow suppression (report every finding)
//	-json  machine-readable output: one JSON object per line with analyzer,
//	       file, line, col, message and suppressed; suppressed findings are
//	       included, and the exit status still reflects only unsuppressed
//	       ones. CI feeds this through a GitHub problem matcher.
//
// The binary also speaks enough of the vet driver protocol (-V=full and
// per-package *.cfg arguments) to be passed as go vet -vettool=$(pwd)/upa-vet;
// in that mode each package unit named by the cfg is checked individually,
// interprocedural facts are written to the unit's .vetx output, and facts of
// dependency units are read back in — the cross-package summary channel.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"upa/internal/analyzers/analysis"
	"upa/internal/analyzers/upavet"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Vet driver protocol probes, sent before any package unit:
	// `-flags` wants a JSON description of tool flags, `-V=full` a stable
	// version line the driver folds into its cache key.
	if len(args) == 1 {
		switch {
		case args[0] == "-flags":
			fmt.Println("[]")
			return 0
		case strings.HasPrefix(args[0], "-V"):
			// The driver folds this whole line into its action cache key;
			// "devel" has special parsing rules, so use a release shape.
			fmt.Println("upa-vet version v0.1.0")
			return 0
		}
	}
	fs := flag.NewFlagSet("upa-vet", flag.ContinueOnError)
	raw := fs.Bool("raw", false, "disable //upa:allow suppression (report every finding)")
	jsonOut := fs.Bool("json", false, "emit one JSON diagnostic per line on stdout (suppressed findings included)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetUnit(rest[0])
	}
	return runStandalone(rest, *raw, *jsonOut)
}

// runStandalone checks the whole module rooted at the argument directory.
// "./..." and "." both mean the current module; any other argument is taken
// as the module root.
func runStandalone(args []string, raw, jsonOut bool) int {
	root := "."
	if len(args) > 0 && args[0] != "./..." && args[0] != "." {
		root = strings.TrimSuffix(args[0], "/...")
	}
	if jsonOut {
		diags, _, src, err := upavet.CheckModuleVerbose(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "upa-vet:", err)
			return 2
		}
		if err := src.PrintJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "upa-vet:", err)
			return 2
		}
		for _, d := range diags {
			if !d.Suppressed || raw {
				return 1
			}
		}
		return 0
	}
	check := upavet.CheckModule
	if raw {
		check = upavet.CheckModuleRaw
	}
	diags, src, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "upa-vet:", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	src.Print(os.Stderr, diags)
	return 1
}

// vetConfig is the subset of the vet driver's per-package JSON config that
// upa-vet consumes. PackageVetx maps dependency import paths to their facts
// files; VetxOutput is where this unit's facts land. VetxOnly marks a
// dependency unit: the driver wants its exported facts, not its diagnostics
// (this is how stdlib sentinel tables reach module packages without upa-vet
// judging the stdlib itself).
type vetConfig struct {
	ImportPath  string
	GoFiles     []string
	VetxOnly    bool
	VetxOutput  string
	PackageVetx map[string]string
}

// runVetUnit handles one `go vet -vettool=` invocation: load the package
// unit named by the cfg, seed the interprocedural module with dependency
// facts, analyze it, write this unit's facts for downstream units, and
// report findings on stderr.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "upa-vet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "upa-vet: parsing", cfgPath+":", err)
		return 2
	}
	external := readDepFacts(cfg.PackageVetx)
	if len(cfg.GoFiles) == 0 {
		writeFacts(cfg.VetxOutput, nil)
		return 0
	}
	fset := token.NewFileSet()
	pkg, err := analysis.LoadDir(fset, filepath.Dir(cfg.GoFiles[0]), cfg.ImportPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "upa-vet:", err)
		return 2
	}
	diags, mod, err := analysis.RunAnalyzersVerbose([]*analysis.Package{pkg}, upavet.Analyzers(), external, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "upa-vet:", err)
		return 2
	}
	writeFacts(cfg.VetxOutput, mod)
	if cfg.VetxOnly {
		// A dependency unit: the driver only wants the facts file.
		return 0
	}
	code := 0
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		// Staleness is a whole-module judgment: a finding suppressed by an
		// annotation may arise from taint the one-package unit view cannot
		// reconstruct (method calls on cross-package receivers resolve by
		// name only in standalone mode). The standalone run and the
		// repo-wide tests own stale detection; unjustified annotations are
		// locally decidable and still reported here.
		if strings.HasPrefix(d.Message, "stale upa:allow(") {
			continue
		}
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
		code = 1
	}
	return code
}

// readDepFacts merges every readable dependency facts file into one Facts
// set. Vetx files written by other tools (or empty placeholders) are
// skipped silently — facts are an accelerator, not a correctness input.
func readDepFacts(vetx map[string]string) *analysis.Facts {
	merged := &analysis.Facts{}
	any := false
	for _, path := range vetx {
		data, err := os.ReadFile(path)
		if err != nil || len(data) == 0 {
			continue
		}
		f, err := analysis.DecodeFacts(data)
		if err != nil {
			continue
		}
		merged.Merge(f)
		any = true
	}
	if !any {
		return nil
	}
	return merged
}

// writeFacts writes the module's exported facts (or an empty placeholder)
// to the driver-designated vetx path.
func writeFacts(path string, mod *analysis.Module) {
	if path == "" {
		return
	}
	var payload []byte
	if mod != nil {
		if enc, err := mod.Facts().Encode(); err == nil {
			payload = enc
		}
	}
	if err := os.WriteFile(path, payload, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, "upa-vet:", err)
	}
}
