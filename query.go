package upa

import (
	"fmt"

	"upa/internal/core"
)

// State is the intermediate aggregate a Mapper emits per record and a
// Reducer combines; scalar queries use length-1 states.
type State = []float64

// Query is a big-data query in UPA's Mapper/Reducer form. Construct simple
// aggregations with the Count, Sum, Mean, and VectorSum helpers, or fill the
// struct directly for custom queries (one KMeans/SGD iteration, fused
// multi-aggregate scans, ...).
//
// The reducer must be commutative and associative and must not mutate its
// arguments: UPA's reuse of intermediate reductions — the source of its
// efficiency — is sound exactly under those properties. Leave Reduce nil for
// coordinate-wise addition, which satisfies both.
type Query[T any] struct {
	// Name labels the query in results.
	Name string
	// StateDim is the length of every State emitted by Map.
	StateDim int
	// OutputDim is the length of the finalized output vector.
	OutputDim int
	// Map computes one record's contribution. It must be pure.
	Map func(T) State
	// Reduce combines two states; nil means coordinate-wise addition.
	Reduce func(State, State) State
	// Finalize converts the total state into the released output; nil means
	// identity (requires OutputDim == StateDim).
	Finalize func(State) []float64
}

func (q Query[T]) toCore() (core.Query[T], error) {
	cq := core.Query[T]{
		Name:      q.Name,
		StateDim:  q.StateDim,
		OutputDim: q.OutputDim,
		Map:       q.Map,
		Reduce:    q.Reduce,
		Finalize:  q.Finalize,
	}
	if err := cq.Validate(); err != nil {
		return core.Query[T]{}, fmt.Errorf("upa: %w", err)
	}
	return cq, nil
}

// Count builds a query that counts the records satisfying pred (all records
// when pred is nil).
func Count[T any](name string, pred func(T) bool) Query[T] {
	return Query[T]{
		Name:      name,
		StateDim:  1,
		OutputDim: 1,
		Map: func(t T) State {
			if pred == nil || pred(t) {
				return State{1}
			}
			return State{0}
		},
	}
}

// Sum builds a query that sums value over all records.
func Sum[T any](name string, value func(T) float64) Query[T] {
	return Query[T]{
		Name:      name,
		StateDim:  1,
		OutputDim: 1,
		Map:       func(t T) State { return State{value(t)} },
	}
}

// Mean builds a query that averages value over all records.
func Mean[T any](name string, value func(T) float64) Query[T] {
	return Query[T]{
		Name:      name,
		StateDim:  2,
		OutputDim: 1,
		Map:       func(t T) State { return State{value(t), 1} },
		Finalize: func(s State) []float64 {
			if s[1] == 0 {
				return []float64{0}
			}
			return []float64{s[0] / s[1]}
		},
	}
}

// VectorSum builds a query that sums a dim-dimensional contribution over all
// records — the building block of gradient aggregation and histogram
// queries.
func VectorSum[T any](name string, dim int, contrib func(T) []float64) Query[T] {
	return Query[T]{
		Name:      name,
		StateDim:  dim,
		OutputDim: dim,
		Map:       func(t T) State { return contrib(t) },
	}
}
