package epsiloncharge_test

import (
	"path/filepath"
	"testing"

	"upa/internal/analyzers/analyzertest"
	"upa/internal/analyzers/epsiloncharge"
)

func TestEpsilonChargeGolden(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "epsiloncharge")
	analyzertest.Run(t, dir, "upa/internal/fake", epsiloncharge.Analyzer)
}
