package mapreduce

import (
	"context"
	"fmt"
	"sync"
)

// Dataset is a partitioned, lazily evaluated, immutable collection of T —
// the analogue of a Spark RDD. Narrow transformations (Map, Filter, ...)
// chain compute closures without materializing; wide transformations
// (ReduceByKey, Join) shuffle; actions (Collect, Reduce, Count) execute the
// lineage on the engine's worker pool.
//
// Datasets are safe for concurrent use by multiple goroutines.
type Dataset[T any] struct {
	eng      *Engine
	numParts int
	name     string

	// compute produces partition p from lineage under the action's context.
	// It must be pure: the scheduler may invoke it again if a task attempt
	// fails, and cancelling ctx must only abort the computation, never leave
	// partial state behind.
	compute func(ctx context.Context, p int) ([]T, error)

	// persistence
	persistMu sync.Mutex
	persisted *partStore[T] // nil until Persist()+materialization
	persist   bool
}

// FromSlice creates a dataset from data split into numParts contiguous
// partitions. It returns an error if numParts < 1. The input slice is copied
// so later caller mutations cannot corrupt lineage recomputation. Source
// partitions count against the engine's memory budget: past it they spill
// to temp files at construction and every partition read streams its file
// back instead of holding the whole dataset in RAM.
func FromSlice[T any](eng *Engine, data []T, numParts int) (*Dataset[T], error) {
	if numParts < 1 {
		return nil, fmt.Errorf("mapreduce: numParts must be >= 1, got %d", numParts)
	}
	owned := make([]T, len(data))
	copy(owned, data)
	parts := make([][]T, numParts)
	for p := 0; p < numParts; p++ {
		lo, hi := sliceBounds(len(owned), numParts, p)
		parts[p] = owned[lo:hi]
	}
	return fromStore(eng, parts)
}

// FromPartitions creates a dataset whose partitions are exactly parts. The
// outer and inner slices are copied. Like FromSlice, partitions past the
// engine's memory budget spill to temp files.
func FromPartitions[T any](eng *Engine, parts [][]T) (*Dataset[T], error) {
	if len(parts) < 1 {
		return nil, fmt.Errorf("mapreduce: need at least one partition")
	}
	owned := make([][]T, len(parts))
	for i, p := range parts {
		owned[i] = make([]T, len(p))
		copy(owned[i], p)
	}
	return fromStore(eng, owned)
}

// fromStore builds a source dataset over a budget-admitted partition store.
// Source partitions are the root of lineage — there is nothing upstream to
// recompute them from — so the store gets no recompute hook; a corrupt
// source spill is handled by the store's read retries alone.
func fromStore[T any](eng *Engine, parts [][]T) (*Dataset[T], error) {
	store, err := storeParts(eng, "source", parts, nil)
	if err != nil {
		return nil, err
	}
	return &Dataset[T]{
		eng:      eng,
		numParts: len(parts),
		name:     "source",
		compute:  func(ctx context.Context, p int) ([]T, error) { return store.get(ctx, p) },
	}, nil
}

// sliceBounds returns the [lo, hi) range of partition p when n elements are
// split into parts contiguous partitions as evenly as possible.
func sliceBounds(n, parts, p int) (lo, hi int) {
	base := n / parts
	rem := n % parts
	lo = p*base + min(p, rem)
	hi = lo + base
	if p < rem {
		hi++
	}
	return lo, hi
}

// Engine returns the engine the dataset is bound to.
func (d *Dataset[T]) Engine() *Engine { return d.eng }

// NumPartitions reports the partition count.
func (d *Dataset[T]) NumPartitions() int { return d.numParts }

// Name returns the dataset's lineage label (for debugging and cache keys).
func (d *Dataset[T]) Name() string { return d.name }

// Persist marks the dataset for in-memory materialization: the first action
// computes and retains every partition; later actions reuse them. It returns
// the receiver for chaining.
func (d *Dataset[T]) Persist() *Dataset[T] {
	d.persistMu.Lock()
	defer d.persistMu.Unlock()
	d.persist = true
	return d
}

// partition returns partition p, using persisted data when available.
// Persisted partitions past the memory budget live in spill files, so a
// read here may stream from disk rather than return a retained slice.
func (d *Dataset[T]) partition(ctx context.Context, p int) ([]T, error) {
	d.persistMu.Lock()
	if d.persisted != nil {
		store := d.persisted
		d.persistMu.Unlock()
		return store.get(ctx, p)
	}
	wantPersist := d.persist
	d.persistMu.Unlock()

	part, err := d.compute(ctx, p)
	if err != nil {
		return nil, err
	}
	if wantPersist {
		// Materialize all partitions at once so persisted is complete.
		// Cheap double-compute of p is acceptable; persistence is rare.
		if err := d.materialize(ctx); err != nil {
			return nil, err
		}
	}
	return part, nil
}

func (d *Dataset[T]) materialize(ctx context.Context) error {
	d.persistMu.Lock()
	defer d.persistMu.Unlock()
	if d.persisted != nil {
		return nil
	}
	parts := make([][]T, d.numParts)
	for p := 0; p < d.numParts; p++ {
		part, err := d.compute(ctx, p)
		if err != nil {
			return err
		}
		parts[p] = part
	}
	// The store's recovery hook is the dataset's own compute closure: a
	// persisted partition whose spill file goes bad is re-derived from
	// lineage, exactly as if it had never been persisted.
	store, err := storeParts(d.eng, d.name+":persist", parts, d.compute)
	if err != nil {
		return err
	}
	d.persisted = store
	return nil
}

// CollectPartitions materializes the dataset and returns its partitions. The
// returned outer slice is fresh; inner slices must be treated as read-only.
func (d *Dataset[T]) CollectPartitions() ([][]T, error) {
	//upa:allow(ctxpropagation) public convenience wrapper: callers without a context land here
	return d.CollectPartitionsCtx(context.Background())
}

// CollectPartitionsCtx is CollectPartitions under a context: cancelling ctx
// stops the scheduler from claiming further partition tasks, and the context
// reaches every lineage stage — including shuffles — so a cancelled job
// aborts mid-shuffle instead of running to completion.
func (d *Dataset[T]) CollectPartitionsCtx(ctx context.Context) ([][]T, error) {
	parts := make([][]T, d.numParts)
	err := d.eng.runTasks(ctx, d.name+":collect", d.numParts, func(tctx context.Context, p int) error {
		part, err := d.partition(tctx, p)
		if err != nil {
			return err
		}
		parts[p] = part
		return nil
	})
	if err != nil {
		return nil, err
	}
	return parts, nil
}

// Collect materializes the dataset and returns all records in partition
// order.
func (d *Dataset[T]) Collect() ([]T, error) {
	//upa:allow(ctxpropagation) public convenience wrapper: callers without a context land here
	return d.CollectCtx(context.Background())
}

// CollectCtx is Collect under a context.
func (d *Dataset[T]) CollectCtx(ctx context.Context) ([]T, error) {
	parts, err := d.CollectPartitionsCtx(ctx)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Count returns the number of records.
func (d *Dataset[T]) Count() (int, error) {
	//upa:allow(ctxpropagation) public convenience wrapper: callers without a context land here
	return d.CountCtx(context.Background())
}

// CountCtx is Count under a context.
func (d *Dataset[T]) CountCtx(ctx context.Context) (int, error) {
	counts := make([]int, d.numParts)
	err := d.eng.runTasks(ctx, d.name+":count", d.numParts, func(tctx context.Context, p int) error {
		part, err := d.partition(tctx, p)
		if err != nil {
			return err
		}
		counts[p] = len(part)
		return nil
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// derived builds a child dataset with the same engine and partition count.
func derived[T, U any](parent *Dataset[T], name string, numParts int, compute func(ctx context.Context, p int) ([]U, error)) *Dataset[U] {
	return &Dataset[U]{
		eng:      parent.eng,
		numParts: numParts,
		name:     parent.name + "." + name,
		compute:  compute,
	}
}
