package mapreduce

import (
	"testing"
	"testing/quick"
)

// Algebraic laws of the engine's operators: these hold for pure functions
// and are what allow Spark-style optimizers (and UPA's reuse argument) to
// reorder work freely.

func collectInts(t *testing.T, d *Dataset[int]) []int {
	t.Helper()
	out, err := d.Collect()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Map fusion: Map(g) ∘ Map(f) ≡ Map(g ∘ f).
func TestMapFusionLaw(t *testing.T) {
	eng := NewEngine()
	f := func(x int) int { return 3*x + 1 }
	g := func(x int) int { return x * x }
	prop := func(raw []int16, partsRaw uint8) bool {
		data := make([]int, len(raw))
		for i, v := range raw {
			data[i] = int(v)
		}
		parts := int(partsRaw%6) + 1
		d1, err := FromSlice(eng, data, parts)
		if err != nil {
			return false
		}
		d2, err := FromSlice(eng, data, parts)
		if err != nil {
			return false
		}
		chained, err := Map(Map(d1, f), g).Collect()
		if err != nil {
			return false
		}
		fused, err := Map(d2, func(x int) int { return g(f(x)) }).Collect()
		if err != nil {
			return false
		}
		return equalInts(chained, fused)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Filter–map commutation: for a predicate on the mapped value,
// Filter(p) ∘ Map(f) ≡ Map(f) ∘ Filter(p ∘ f).
func TestFilterMapCommutationLaw(t *testing.T) {
	eng := NewEngine()
	f := func(x int) int { return x - 7 }
	p := func(x int) bool { return x%2 == 0 }
	prop := func(raw []int16) bool {
		data := make([]int, len(raw))
		for i, v := range raw {
			data[i] = int(v)
		}
		d1, err := FromSlice(eng, data, 3)
		if err != nil {
			return false
		}
		d2, err := FromSlice(eng, data, 3)
		if err != nil {
			return false
		}
		mapThenFilter, err := Filter(Map(d1, f), p).Collect()
		if err != nil {
			return false
		}
		filterThenMap, err := Map(Filter(d2, func(x int) bool { return p(f(x)) }), f).Collect()
		if err != nil {
			return false
		}
		return equalInts(mapThenFilter, filterThenMap)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Filter conjunction: Filter(p) ∘ Filter(q) ≡ Filter(p ∧ q).
func TestFilterConjunctionLaw(t *testing.T) {
	eng := NewEngine()
	p := func(x int) bool { return x > 0 }
	q := func(x int) bool { return x%3 != 0 }
	prop := func(raw []int16) bool {
		data := make([]int, len(raw))
		for i, v := range raw {
			data[i] = int(v)
		}
		d1, err := FromSlice(eng, data, 2)
		if err != nil {
			return false
		}
		d2, err := FromSlice(eng, data, 2)
		if err != nil {
			return false
		}
		chained, err := Filter(Filter(d1, q), p).Collect()
		if err != nil {
			return false
		}
		combined, err := Filter(d2, func(x int) bool { return p(x) && q(x) }).Collect()
		if err != nil {
			return false
		}
		return equalInts(chained, combined)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Partitioning invariance: the partition count never changes an action's
// result (the property that makes the engine's parallelism safe).
func TestPartitioningInvarianceLaw(t *testing.T) {
	eng := NewEngine()
	prop := func(raw []int16, p1Raw, p2Raw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		data := make([]int, len(raw))
		for i, v := range raw {
			data[i] = int(v)
		}
		p1 := int(p1Raw%8) + 1
		p2 := int(p2Raw%8) + 1
		d1, err := FromSlice(eng, data, p1)
		if err != nil {
			return false
		}
		d2, err := FromSlice(eng, data, p2)
		if err != nil {
			return false
		}
		sum := func(a, b int) int { return a + b }
		r1, err := Reduce(Map(d1, func(x int) int { return x * x }), sum)
		if err != nil {
			return false
		}
		r2, err := Reduce(Map(d2, func(x int) int { return x * x }), sum)
		if err != nil {
			return false
		}
		return r1 == r2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
