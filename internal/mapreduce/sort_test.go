package mapreduce

import (
	"context"
	"errors"
	"sort"
	"testing"
	"testing/quick"
)

func TestSortBy(t *testing.T) {
	eng := NewEngine()
	data := []int{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	d, err := FromSlice(eng, data, 3)
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := SortBy(d, 4, func(a, b int) bool { return a < b })
	if err != nil {
		t.Fatal(err)
	}
	if sorted.NumPartitions() != 4 {
		t.Fatalf("NumPartitions = %d, want 4", sorted.NumPartitions())
	}
	got, err := sorted.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("sorted output = %v", got)
		}
	}
	if _, err := SortBy(d, 0, func(a, b int) bool { return a < b }); err == nil {
		t.Fatal("zero partitions accepted")
	}
}

func TestSortByCountsShuffle(t *testing.T) {
	eng := NewEngine()
	d, err := FromSlice(eng, intsUpTo(100), 4)
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := SortBy(d, 2, func(a, b int) bool { return a > b })
	if err != nil {
		t.Fatal(err)
	}
	before := eng.Metrics().ShuffleRounds
	if _, err := sorted.Collect(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Metrics().ShuffleRounds - before; got != 1 {
		t.Fatalf("sort used %d shuffle rounds, want 1", got)
	}
	// Re-collecting does not re-shuffle (shared sorted materialization).
	if _, err := sorted.Collect(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Metrics().ShuffleRounds - before; got != 1 {
		t.Fatalf("re-collect re-shuffled: %d rounds", got)
	}
}

func TestSortByStable(t *testing.T) {
	type rec struct{ k, seq int }
	eng := NewEngine()
	data := []rec{{1, 0}, {0, 1}, {1, 2}, {0, 3}, {1, 4}}
	d, err := FromSlice(eng, data, 2)
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := SortBy(d, 1, func(a, b rec) bool { return a.k < b.k })
	if err != nil {
		t.Fatal(err)
	}
	got, err := sorted.Collect()
	if err != nil {
		t.Fatal(err)
	}
	prevSeq := -1
	for _, r := range got {
		if r.k == 1 {
			if r.seq < prevSeq {
				t.Fatalf("stability broken: %v", got)
			}
			prevSeq = r.seq
		}
	}
}

func TestSortByProperty(t *testing.T) {
	eng := NewEngine()
	f := func(raw []int16, partsRaw uint8) bool {
		data := make([]int, len(raw))
		for i, v := range raw {
			data[i] = int(v)
		}
		parts := int(partsRaw%5) + 1
		d, err := FromSlice(eng, data, parts)
		if err != nil {
			return false
		}
		sorted, err := SortBy(d, parts, func(a, b int) bool { return a < b })
		if err != nil {
			return false
		}
		got, err := sorted.Collect()
		if err != nil {
			return false
		}
		want := make([]int, len(data))
		copy(want, data)
		sort.Ints(want)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTop(t *testing.T) {
	eng := NewEngine()
	d, err := FromSlice(eng, []int{4, 9, 1, 7, 3, 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Top(d, 3, func(a, b int) bool { return a < b })
	if err != nil {
		t.Fatal(err)
	}
	want := []int{9, 8, 7}
	if len(got) != 3 {
		t.Fatalf("Top = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Top = %v, want %v", got, want)
		}
	}
	// k larger than the dataset returns everything.
	all, err := Top(d, 100, func(a, b int) bool { return a < b })
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 6 {
		t.Fatalf("Top(100) returned %d records", len(all))
	}
	if zero, err := Top(d, 0, func(a, b int) bool { return a < b }); err != nil || zero != nil {
		t.Fatalf("Top(0) = %v, %v", zero, err)
	}
	if _, err := Top(d, -1, func(a, b int) bool { return a < b }); err == nil {
		t.Fatal("negative k accepted")
	}
}

// TestTopCtxCancellation is the regression test for Top severing the
// cancellation chain: it used to mint context.Background() internally, so a
// cancelled caller context could not abort the per-partition selection.
func TestTopCtxCancellation(t *testing.T) {
	eng := NewEngine()
	d, err := FromSlice(eng, []int{4, 9, 1, 7, 3, 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TopCtx(ctx, d, 3, func(a, b int) bool { return a < b }); !errors.Is(err, context.Canceled) {
		t.Fatalf("TopCtx with cancelled context = %v, want context.Canceled", err)
	}
	// A live context still produces the top-k.
	got, err := TopCtx(context.Background(), d, 2, func(a, b int) bool { return a < b })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 9 || got[1] != 8 {
		t.Fatalf("TopCtx = %v, want [9 8]", got)
	}
}
