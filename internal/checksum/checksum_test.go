package checksum

import "testing"

// TestSumIsCastagnoli pins the polynomial with a known vector: the CRC-32C
// of "123456789" is 0xE3069283 (RFC 3720 appendix B.4). If someone swaps
// the table for IEEE the spill files and ledger journals on disk would all
// read back as corrupt; this catches that at unit-test speed.
func TestSumIsCastagnoli(t *testing.T) {
	if got := Sum([]byte("123456789")); got != 0xE3069283 {
		t.Fatalf("Sum(123456789) = %#x, want 0xE3069283 (CRC-32C)", got)
	}
}

func TestUpdateMatchesSum(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	want := Sum(data)
	for split := 0; split <= len(data); split++ {
		got := Update(Sum(data[:split]), data[split:])
		if got != want {
			t.Fatalf("Update split at %d = %#x, want %#x", split, got, want)
		}
	}
}

func TestSumDetectsSingleBitFlips(t *testing.T) {
	data := []byte("spill frame payload")
	want := Sum(data)
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			data[i] ^= 1 << bit
			if Sum(data) == want {
				t.Fatalf("flip of byte %d bit %d not detected", i, bit)
			}
			data[i] ^= 1 << bit
		}
	}
}
