// Package seededdeterminism_off is golden-test input loaded under a
// non-critical import path: the same ambient-nondeterminism patterns that
// fire under internal/mapreduce must produce zero diagnostics here.
package seededdeterminism_off

import (
	"math/rand"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano()
}

func globalRand(n int) int {
	return rand.Intn(n)
}
