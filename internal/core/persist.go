package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// The RANGE ENFORCER's history is the system's attack-detection state: if
// it were lost on restart, an analyst could replay the §III attack by
// simply bouncing the service between the two releases. Save/Load
// serialize the history so deployments can persist it across restarts.

// historyEntryJSON mirrors historyEntry for encoding (the struct itself
// keeps unexported fields).
type historyEntryJSON struct {
	Name  string       `json:"name"`
	Parts [2][]float64 `json:"parts"`
}

const historyVersion = 1

// Save writes the enforcer's history to w.
func (e *RangeEnforcer) Save(w io.Writer) error {
	e.mu.Lock()
	entries := make([]historyEntryJSON, len(e.history))
	for i, h := range e.history {
		entries[i] = historyEntryJSON{
			Name:  h.name,
			Parts: [2][]float64{cloneVec(h.parts[0]), cloneVec(h.parts[1])},
		}
	}
	e.mu.Unlock()

	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		Version int                `json:"version"`
		Entries []historyEntryJSON `json:"entries"`
	}{Version: historyVersion, Entries: entries})
}

// Load replaces the enforcer's history with the one serialized in r.
func (e *RangeEnforcer) Load(r io.Reader) error {
	var file struct {
		Version int                `json:"version"`
		Entries []historyEntryJSON `json:"entries"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&file); err != nil {
		return fmt.Errorf("core: decode enforcer history: %w", err)
	}
	if file.Version != historyVersion {
		return fmt.Errorf("core: enforcer history version %d, want %d", file.Version, historyVersion)
	}
	entries := make([]historyEntry, len(file.Entries))
	for i, h := range file.Entries {
		if h.Parts[0] == nil || h.Parts[1] == nil {
			return fmt.Errorf("core: enforcer history entry %d has missing partitions", i)
		}
		entries[i] = historyEntry{
			name:  h.Name,
			parts: [2][]float64{cloneVec(h.Parts[0]), cloneVec(h.Parts[1])},
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.history = entries
	return nil
}
