package serve

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// buildPersisted creates a store-backed ledger, runs movements through it,
// and returns the ledger (for expected state) with the store left open.
func buildPersisted(t *testing.T, path string) (*Ledger, *Store) {
	t.Helper()
	st, replay, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != 0 {
		t.Fatalf("fresh store replayed %d entries", len(replay))
	}
	l := NewLedger(st.Append)
	if err := l.Register("acme", 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.ChargeAdmission("acme", "u1", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := l.ChargeAdmission("acme", "u2", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := l.RefundAdmission("acme", "u2", 0.5); err != nil {
		t.Fatal(err)
	}
	return l, st
}

func reopenAndReplay(t *testing.T, path string) (*Ledger, *Cache, *Store) {
	t.Helper()
	st, replay, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLedger(nil)
	c := NewCache(16)
	for _, e := range replay {
		if e.Kind == entryRelease {
			if e.Release != nil {
				c.replay(e.Key, *e.Release)
			}
			continue
		}
		l.replayEntry(e)
	}
	return l, c, st
}

func TestStoreJournalReplayReconstructsLedger(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	l, st := buildPersisted(t, path)
	want := l.Report()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	replayed, _, st2 := reopenAndReplay(t, path)
	defer st2.Close()
	if got := replayed.Report(); !reflect.DeepEqual(got, want) {
		t.Fatalf("journal replay diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestStoreFlushCompactsJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	l, st := buildPersisted(t, path)
	want := l.Report()

	rel := CachedRelease{Query: "q", Fingerprint: "f", Epsilon: 0.25, Seed: 7, Output: []float64{3.5}, SampleSize: 4, Charged: 0.25}
	if err := st.Append(entry{Kind: entryRelease, Key: CacheKey("f", "people", 0.25, 7), Release: &rel}); err != nil {
		t.Fatal(err)
	}
	cache := NewCache(16)
	cache.replay(CacheKey("f", "people", 0.25, 7), rel)

	if err := st.Flush(append(l.compact(), cache.compact()...)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The journal is truncated: everything lives in the snapshot now.
	if data, err := os.ReadFile(path + ".journal"); err != nil || len(data) != 0 {
		t.Fatalf("journal after flush: %d bytes, err %v", len(data), err)
	}

	replayed, rcache, st2 := reopenAndReplay(t, path)
	defer st2.Close()
	if got := replayed.Report(); !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot replay diverged:\n got %+v\nwant %+v", got, want)
	}
	got, ok := rcache.lookup(CacheKey("f", "people", 0.25, 7))
	if !ok || !reflect.DeepEqual(got, rel) {
		t.Fatalf("snapshot did not restore the cached release: %+v ok=%v", got, ok)
	}
}

func TestStoreToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	l, st := buildPersisted(t, path)
	want := l.Report()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, non-JSON final line.
	f, err := os.OpenFile(path+".journal", os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":99,"kind":"char`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	replayed, _, st2 := reopenAndReplay(t, path)
	defer st2.Close()
	if got := replayed.Report(); !reflect.DeepEqual(got, want) {
		t.Fatalf("torn-tail replay diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestStoreReplaySkipsJournalEntriesCoveredBySnapshot simulates the crash
// window inside Flush — snapshot renamed into place, journal not yet
// truncated — and asserts the next boot does not double-count the movements
// that are in both.
func TestStoreReplaySkipsJournalEntriesCoveredBySnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	l, st := buildPersisted(t, path)
	want := l.Report()

	// Save the journal as written, flush (snapshot + truncate), then restore
	// the pre-flush journal: exactly the on-disk state a crash between
	// Flush's rename and truncate leaves behind.
	journal, err := os.ReadFile(path + ".journal")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(l.compact()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".journal", journal, 0o644); err != nil {
		t.Fatal(err)
	}

	replayed, _, st2 := reopenAndReplay(t, path)
	defer st2.Close()
	if got := replayed.Report(); !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot+stale-journal replay double-counted:\n got %+v\nwant %+v", got, want)
	}
}

// TestStoreRejectsMidFileCorruption: a corrupt line with valid entries after
// it is not a torn tail — replaying past it would silently drop ε charges,
// so opening the store must fail instead.
func TestStoreRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	_, st := buildPersisted(t, path)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	journal := path + ".journal"
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte("not json\n"), data...)
	if err := os.WriteFile(journal, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenStore(path); err == nil {
		t.Fatal("mid-file journal corruption did not fail the boot")
	}
}

func TestStoreSequenceSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	_, st := buildPersisted(t, path)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, replay, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	maxSeq := uint64(0)
	for _, e := range replay {
		if e.Seq > maxSeq {
			maxSeq = e.Seq
		}
	}
	if err := st2.Append(entry{Kind: entryCharge, Tenant: "acme", User: "u3", Eps: 0.1}); err != nil {
		t.Fatal(err)
	}
	entries, err := readJournal(path + ".journal")
	if err != nil {
		t.Fatal(err)
	}
	last := entries[len(entries)-1]
	if last.Seq != maxSeq+1 {
		t.Fatalf("appended seq = %d, want %d", last.Seq, maxSeq+1)
	}
}
