package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNextNonTrivialLine(t *testing.T) {
	src := []string{
		"//upa:allow(demo) line 1",   // 1
		"",                           // 2
		"// explanatory comment",     // 3
		"\tfmt.Println(\"covered\")", // 4
		"}",                          // 5
	}
	if got := nextNonTrivialLine(src, 1); got != 4 {
		t.Errorf("blank and comment lines must be skipped: got line %d, want 4", got)
	}
	// A closing brace terminates the scope: the annotation covers nothing
	// below it.
	if got := nextNonTrivialLine(src, 4); got != 0 {
		t.Errorf("closing punctuation must end the scope: got line %d, want 0", got)
	}
	// The scan gives up after a few lines so an annotation at the top of a
	// long comment block cannot silently attach to distant code.
	far := []string{"//upa:allow(demo) x", "", "", "", "", "", "", "code()"}
	if got := nextNonTrivialLine(far, 1); got != 0 {
		t.Errorf("scan horizon must bound the scope: got line %d, want 0", got)
	}
	if got := nextNonTrivialLine([]string{"//upa:allow(demo) x"}, 1); got != 0 {
		t.Errorf("end of file must end the scope: got line %d, want 0", got)
	}
}

const suppressFixture = `package p

import "fmt"

func a() {
	//upa:allow(demo) justified: covers the formatting below

	// explanatory comment skipped by the scope scan
	fmt.Println("covered")
	fmt.Println("not covered")
}

func b() {
	//upa:allow(demo) dangling: the brace below ends the scope
}

func c() {
	//upa:allow(demo)
	fmt.Println("unjustified")
}

func d() {
	//upa:allow(otherdemo) justified, but otherdemo is not in the run set
	fmt.Println("other")
}
`

// TestApplySuppressions pins the whole annotation contract on one synthetic
// package: scope (own line + next non-trivial line, brace-bounded),
// missing-justification reporting, stale detection, and the run-set gate on
// staleness.
func TestApplySuppressions(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(suppressFixture), 0o666); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkg, err := LoadDir(fset, dir, "probe/p")
	if err != nil {
		t.Fatal(err)
	}
	var tf *token.File
	fset.Iterate(func(f *token.File) bool { tf = f; return false })
	lineNo := func(substr string) int {
		for i, l := range strings.Split(suppressFixture, "\n") {
			if strings.Contains(l, substr) {
				return i + 1
			}
		}
		t.Fatalf("fixture has no line containing %q", substr)
		return 0
	}
	at := func(substr string) token.Pos { return tf.LineStart(lineNo(substr)) }

	raw := []Diagnostic{
		{Analyzer: "demo", Pos: at(`"covered"`), Message: "finding on the covered line"},
		{Analyzer: "demo", Pos: at(`"not covered"`), Message: "finding past the scope"},
	}
	out := applySuppressions(pkg, raw, map[string]bool{"demo": true})

	var covered, past, unjustified, stale, staleOther bool
	for _, d := range out {
		line := fset.Position(d.Pos).Line
		switch {
		case line == lineNo(`"covered"`) && d.Message == "finding on the covered line":
			covered = d.Suppressed
		case line == lineNo(`"not covered"`):
			if d.Suppressed {
				t.Errorf("diagnostic two lines below the annotation must not be suppressed")
			}
			past = true
		case strings.Contains(d.Message, "requires a justification"):
			unjustified = true
		case strings.Contains(d.Message, "stale upa:allow(demo)"):
			if line != lineNo("dangling") {
				t.Errorf("stale report at line %d, want the dangling annotation at %d", line, lineNo("dangling"))
			}
			stale = true
		case strings.Contains(d.Message, "stale upa:allow(otherdemo)"):
			staleOther = true
		}
	}
	if !covered {
		t.Error("annotation did not suppress the diagnostic on its next non-trivial line")
	}
	if !past {
		t.Error("the out-of-scope diagnostic disappeared from the output")
	}
	if !unjustified {
		t.Error("justification-free annotation was not reported")
	}
	if !stale {
		t.Error("dangling annotation (covering nothing) was not reported stale")
	}
	if staleOther {
		t.Error("annotation for an analyzer outside the run set must not be reported stale")
	}
}
