package sql

import (
	"strings"
	"testing"

	"upa/internal/bruteforce"
	"upa/internal/core"
	"upa/internal/mapreduce"
)

// q4ish builds the test plan: count (order, lineitem) joined pairs with a
// filter on both sides.
func q4ish(orders, lineitems *ScanPlan) Plan {
	joined := JoinOn(orders, "custkey", lineitems, "okey")
	filtered := Where(joined, Gt(Col("price"), Lit(Float(60))))
	return GroupBy(filtered, nil, AggSpec{Name: "n", Func: AggCount})
}

func lineitemsScan() *ScanPlan {
	cols := Schema{{Name: "okey", Kind: KindInt}, {Name: "qty", Kind: KindInt}}
	rows := []Row{
		{Int(10), Int(1)}, {Int(10), Int(2)}, {Int(10), Int(3)},
		{Int(11), Int(4)}, {Int(12), Int(5)},
	}
	return Scan("lineitem", cols, rows)
}

func TestCompileDPCountMatchesExecute(t *testing.T) {
	eng := mapreduce.NewEngine()
	plan := q4ish(ordersScan(), lineitemsScan())
	want, err := ExecuteCount(eng, plan)
	if err != nil {
		t.Fatal(err)
	}
	q, data, err := CompileDPCount(eng, plan, "orders")
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.RunVanilla(eng, q, data)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != float64(want) {
		t.Fatalf("DP-compiled count = %v, Execute = %d", out[0], want)
	}
}

func TestCompileDPCountInfluenceIsExact(t *testing.T) {
	// Brute force over the compiled query must equal re-executing the plan
	// with each protected row removed.
	eng := mapreduce.NewEngine()
	orders := ordersScan()
	plan := q4ish(orders, lineitemsScan())
	q, data, err := CompileDPCount(eng, plan, "orders")
	if err != nil {
		t.Fatal(err)
	}
	truth, err := bruteforce.LocalSensitivity(eng, q, data, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orders.Rows {
		// Reference: drop row i and re-execute.
		kept := make([]Row, 0, len(orders.Rows)-1)
		kept = append(kept, orders.Rows[:i]...)
		kept = append(kept, orders.Rows[i+1:]...)
		refPlan := q4ish(Scan("orders", orders.Cols, kept), lineitemsScan())
		want, err := ExecuteCount(eng, refPlan)
		if err != nil {
			t.Fatal(err)
		}
		if got := truth.RemovalOutputs[i][0]; got != float64(want) {
			t.Fatalf("row %d: removal output %v, re-execution %d", i, got, want)
		}
	}
}

func TestCompileDPCountEndToEndRelease(t *testing.T) {
	eng := mapreduce.NewEngine()
	plan := q4ish(ordersScan(), lineitemsScan())
	q, data, err := CompileDPCount(eng, plan, "orders")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.SampleSize = len(data) // exact neighbours on the tiny relation
	sys, err := core.NewSystem(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(sys, q, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 {
		t.Fatalf("release dim = %d", len(res.Output))
	}
	// The order with custkey 10 (two orders, price 100 and 50) joins three
	// lineitems each; price>60 keeps only the 100-priced one → its removal
	// erases 3 pairs. Exact neighbours make this the empirical sensitivity.
	if res.EmpiricalLocalSensitivity[0] != 3 {
		t.Fatalf("empirical sensitivity = %v, want 3", res.EmpiricalLocalSensitivity[0])
	}
}

func TestCompileDPCountValidation(t *testing.T) {
	eng := mapreduce.NewEngine()
	orders := ordersScan()
	lineitems := lineitemsScan()

	// Not a count.
	notCount := GroupBy(orders, nil, AggSpec{Name: "s", Func: AggSum, Arg: Col("price")})
	if _, _, err := CompileDPCount(eng, notCount, "orders"); err == nil {
		t.Error("non-count plan accepted")
	}
	// Unknown protected table.
	plan := q4ish(orders, lineitems)
	if _, _, err := CompileDPCount(eng, plan, "nope"); err == nil {
		t.Error("unknown protected table accepted")
	}
	// Self-join on the protected table.
	self := GroupBy(JoinOn(orders, "custkey", orders, "custkey"), nil,
		AggSpec{Name: "n", Func: AggCount})
	if _, _, err := CompileDPCount(eng, self, "orders"); err == nil {
		t.Error("protected self-join accepted")
	}
	// Interior Project is outside the fragment.
	projected := GroupBy(
		Project(orders, NamedExpr{Name: "custkey", Expr: Col("custkey")}),
		nil, AggSpec{Name: "n", Func: AggCount})
	if _, _, err := CompileDPCount(eng, projected, "orders"); err == nil {
		t.Error("interior Project accepted")
	}
	// Reserved column clash.
	clash := Scan("t", Schema{{Name: "__protected_idx", Kind: KindInt}}, []Row{{Int(1)}})
	clashPlan := GroupBy(clash, nil, AggSpec{Name: "n", Func: AggCount})
	if _, _, err := CompileDPCount(eng, clashPlan, "t"); err == nil ||
		!strings.Contains(err.Error(), "__protected_idx") {
		t.Errorf("reserved column clash not rejected: %v", err)
	}
}

func TestCompileDPCountUnwrapsRootDecorations(t *testing.T) {
	// ORDER BY and LIMIT above the counting aggregate are presentation-only
	// and must not block DP compilation.
	eng := mapreduce.NewEngine()
	inner := q4ish(ordersScan(), lineitemsScan())
	decorated := Limit(OrderBy(inner, SortKey{Column: "n"}), 1)
	q, data, err := CompileDPCount(eng, decorated, "orders")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExecuteCount(eng, inner)
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.RunVanilla(eng, q, data)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != float64(want) {
		t.Fatalf("decorated DP count = %v, want %d", out[0], want)
	}
}

func TestCompileDPCountZeroInfluenceRows(t *testing.T) {
	// Rows filtered out entirely have zero influence; the broadcast map
	// must default them to 0 rather than fail.
	eng := mapreduce.NewEngine()
	plan := GroupBy(
		Where(ordersScan(), Eq(Col("status"), Lit(Str("F")))),
		nil, AggSpec{Name: "n", Func: AggCount})
	q, data, err := CompileDPCount(eng, plan, "orders")
	if err != nil {
		t.Fatal(err)
	}
	truth, err := bruteforce.LocalSensitivity(eng, q, data, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Status O rows (two of five) contribute 0; their removal outputs equal
	// the full count of 3.
	zeroInfluence := 0
	for _, o := range truth.RemovalOutputs {
		if o[0] == truth.Output[0] {
			zeroInfluence++
		}
	}
	if zeroInfluence != 2 {
		t.Fatalf("%d zero-influence rows, want 2", zeroInfluence)
	}
	if truth.LocalSensitivity[0] != 1 {
		t.Fatalf("count sensitivity = %v, want 1", truth.LocalSensitivity[0])
	}
}
