// Serving-layer half of the golden input: mirrors internal/serve's shape —
// a hierarchical tenant→user ledger whose raw counters move only through
// applyDeltaLocked/spentLocked, admission helpers that journal every movement,
// and a blessed execute site that charges before any success return.
package epsiloncharge

import "errors"

type tenantLedger struct {
	budget   float64
	spentEps float64
	users    map[string]*userLedger
}

type userLedger struct {
	spentEps float64
}

// applyDeltaLocked and spentLocked are the only code allowed to touch spentEps.
func applyDeltaLocked(t *tenantLedger, u *userLedger, eps float64) {
	t.spentEps += eps
	u.spentEps += eps
}

func spentLocked(t *tenantLedger, u *userLedger) (float64, float64) {
	return t.spentEps, u.spentEps
}

// auditSpend peeks at the raw counter: forbidden even read-only.
func auditSpend(t *tenantLedger) float64 {
	return t.spentEps // want `direct access to the serving ε ledger \(spentEps\) outside applyDeltaLocked/spentLocked`
}

// forceSpend moves the ledger outside the admission helpers: no budget
// check, no journal entry.
func forceSpend(t *tenantLedger, u *userLedger, eps float64) {
	applyDeltaLocked(t, u, eps) // want `applyDeltaLocked called outside ChargeAdmission/RefundAdmission/replayEntry`
}

type Ledger struct {
	tenants map[string]*tenantLedger
}

func (l *Ledger) ChargeAdmission(tenant, user string, eps float64) error {
	t := l.tenants[tenant]
	u := t.users[user]
	spent, _ := spentLocked(t, u)
	if t.budget > 0 && spent+eps > t.budget {
		return errors.New("budget exhausted")
	}
	applyDeltaLocked(t, u, eps)
	return nil
}

func (l *Ledger) RefundAdmission(tenant, user string, eps float64) error {
	t := l.tenants[tenant]
	applyDeltaLocked(t, t.users[user], -eps)
	return nil
}

type replayRecord struct {
	tenant, user string
	eps          float64
}

func (l *Ledger) replayEntry(e replayRecord) {
	t := l.tenants[e.tenant]
	applyDeltaLocked(t, t.users[e.user], e.eps)
}

type ServeRelease struct{ Output []float64 }

type Service struct {
	ledger *Ledger
}

// execute is the blessed admission site: error returns may precede the
// charge, the success return must not.
func (s *Service) execute(tenant, user string, eps float64) (*ServeRelease, error) {
	if eps <= 0 {
		return nil, errors.New("bad epsilon") // error return before charge: fine
	}
	if err := s.ledger.ChargeAdmission(tenant, user, eps); err != nil {
		return nil, err
	}
	rel := &ServeRelease{Output: []float64{eps}}
	if len(rel.Output) == 0 {
		if rerr := s.ledger.RefundAdmission(tenant, user, eps); rerr != nil {
			return nil, rerr
		}
		return nil, errors.New("empty release")
	}
	return rel, nil
}

// quickCharge admits from a site that is not the blessed one.
func (s *Service) quickCharge(tenant, user string, eps float64) error {
	return s.ledger.ChargeAdmission(tenant, user, eps) // want `ChargeAdmission called outside the blessed admission site execute`
}

// quickRefund likewise for the refund half.
func (s *Service) quickRefund(tenant, user string, eps float64) error {
	return s.ledger.RefundAdmission(tenant, user, eps) // want `RefundAdmission called outside the blessed admission site execute`
}

// BrokenService carries an execute whose control flow violates the
// discipline: a success return is reachable before the charge, and the
// happy path charges twice.
type BrokenService struct {
	ledger *Ledger
}

func (s *BrokenService) execute(tenant, user string, eps float64) (*ServeRelease, error) {
	rel := &ServeRelease{}
	if eps == 0 {
		return rel, nil // want `admission path returns success before ChargeAdmission charges the ledger`
	}
	if err := s.ledger.ChargeAdmission(tenant, user, eps); err != nil {
		return nil, err
	}
	if err := s.ledger.ChargeAdmission(tenant, user, eps); err != nil { // want `execute charges admission more than once`
		return nil, err
	}
	return rel, nil
}
