// Package lifesci generates a synthetic stand-in for the paper's proprietary
// "ds1.10 Life Science Data": clustered, high-dimensional feature vectors
// for KMeans and a planted linear model with heavy-tailed noise for linear
// regression. The heavy tail plants the few-outliers structure the paper
// assumes for local sensitivity ("most data records ... have small influence
// on the output value, only few outliers exist", §IV-A).
package lifesci

import (
	"fmt"

	"upa/internal/stats"
)

// Point is a feature vector with its regression target.
type Point struct {
	Features []float64
	Target   float64
}

// Config controls the generator.
type Config struct {
	Records  int
	Dims     int
	Clusters int
	// OutlierFrac is the probability that a record receives a heavy-tailed
	// perturbation (20x noise), creating the sensitivity outliers of §VI-C.
	OutlierFrac float64
	Seed        uint64
}

// DefaultConfig returns the evaluation default: 20k records, 4 dimensions,
// 3 clusters, 1% outliers.
func DefaultConfig() Config {
	return Config{Records: 20000, Dims: 4, Clusters: 3, OutlierFrac: 0.01, Seed: 1}
}

// Dataset is a generated life-science-like dataset. TrueWeights holds the
// planted linear model (Dims coefficients plus an intercept appended last);
// TrueCenters holds the planted cluster centroids.
type Dataset struct {
	Config      Config
	Points      []Point
	TrueWeights []float64
	TrueCenters [][]float64
}

// Generate builds the dataset deterministically from cfg.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Records < 1 {
		return nil, fmt.Errorf("lifesci: Records must be >= 1, got %d", cfg.Records)
	}
	if cfg.Dims < 1 {
		return nil, fmt.Errorf("lifesci: Dims must be >= 1, got %d", cfg.Dims)
	}
	if cfg.Clusters < 1 {
		return nil, fmt.Errorf("lifesci: Clusters must be >= 1, got %d", cfg.Clusters)
	}
	if cfg.OutlierFrac < 0 || cfg.OutlierFrac >= 1 {
		return nil, fmt.Errorf("lifesci: OutlierFrac must be in [0, 1), got %v", cfg.OutlierFrac)
	}
	root := stats.NewRNG(cfg.Seed)
	ds := &Dataset{Config: cfg}

	// Plant cluster centres on a deterministic lattice jittered by the seed.
	centreRNG := root.Split(1)
	ds.TrueCenters = make([][]float64, cfg.Clusters)
	for c := range ds.TrueCenters {
		centre := make([]float64, cfg.Dims)
		for d := range centre {
			centre[d] = float64(c*7%13) + 4*centreRNG.NormFloat64()
		}
		ds.TrueCenters[c] = centre
	}

	// Plant the linear model.
	weightRNG := root.Split(2)
	ds.TrueWeights = make([]float64, cfg.Dims+1)
	for d := range ds.TrueWeights {
		ds.TrueWeights[d] = weightRNG.NormFloat64()
	}

	pointRNG := root.Split(3)
	ds.Points = make([]Point, cfg.Records)
	for i := range ds.Points {
		ds.Points[i] = ds.samplePoint(pointRNG)
	}
	return ds, nil
}

// samplePoint draws one record from the planted distribution.
func (ds *Dataset) samplePoint(rng *stats.RNG) Point {
	cfg := ds.Config
	centre := ds.TrueCenters[rng.Intn(cfg.Clusters)]
	features := make([]float64, cfg.Dims)
	for d := range features {
		features[d] = centre[d] + rng.NormFloat64()
	}
	noise := 0.5 * rng.NormFloat64()
	if cfg.OutlierFrac > 0 && rng.Float64() < cfg.OutlierFrac {
		noise *= 20
	}
	target := ds.TrueWeights[cfg.Dims] // intercept
	for d, x := range features {
		target += ds.TrueWeights[d] * x
	}
	return Point{Features: features, Target: target + noise}
}

// RandomPoint draws a fresh record from the domain D — UPA uses it for the
// "addition" neighbouring samples.
func (ds *Dataset) RandomPoint(rng *stats.RNG) Point {
	return ds.samplePoint(rng)
}
