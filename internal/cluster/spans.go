package cluster

import (
	"fmt"
	"time"

	"upa/internal/jobgraph"
)

// PriceSpan prices one jobgraph stage span into simulated cluster time.
// Unlike Estimate, which prices a whole release's aggregate engine delta, a
// span is priced from the counters its stage reported, so the cost model can
// attribute simulated time stage by stage. JobStartup is not charged here —
// a plan pays it once (see PricePlan), not once per stage.
func (m Model) PriceSpan(s jobgraph.Span) (Cost, error) {
	if err := m.Validate(); err != nil {
		return Cost{}, err
	}
	cores := float64(m.Nodes * m.CoresPerNode)
	// Map-side combining trades network for local CPU: the combine fold
	// touches every pre-combine record on the mappers, so those records are
	// charged as local record operations while only the post-combine volume
	// pays network below (spans report the shrunken ShuffledRecords).
	recordOps := float64(s.Records + s.ReduceOps + s.RecordsPreCombine)
	cpu := time.Duration(recordOps * float64(m.RecordCPU) / cores)

	// Spans carry the actual shuffled byte volume; fall back to the model's
	// per-record size for stages that only counted records.
	bits := float64(s.ShuffleBytes) * 8
	if s.ShuffleBytes == 0 {
		bits = float64(s.ShuffledRecords) * float64(m.RecordBytes) * 8
	}
	network := time.Duration(bits / (m.BisectionGbps * 1e9) * float64(time.Second))

	var barriers time.Duration
	if s.ShuffledRecords > 0 || s.ShuffleBytes > 0 {
		// A stage that shuffles pays one synchronization barrier.
		barriers = m.ShuffleLatency
	}
	waves := (int64(s.Attempts) + int64(m.Nodes) - 1) / int64(m.Nodes)
	scheduler := time.Duration(waves) * m.TaskOverhead

	retry := time.Duration(s.Retries)*m.TaskOverhead + time.Duration(s.BackoffNanos)

	return Cost{CPU: cpu, Network: network, Barriers: barriers, Scheduler: scheduler, Retry: retry}, nil
}

// StageCost is one stage of a priced plan.
type StageCost struct {
	// Stage names the stage; Cost is its modeled cost (no startup share).
	Stage string
	Cost  Cost
	// Finish is the stage's completion time along the modeled schedule: its
	// own cost on top of the latest-finishing dependency. The plan's
	// critical-path length is the greatest Finish.
	Finish time.Duration
}

// PlanCost is a whole release DAG priced stage by stage.
type PlanCost struct {
	// Stages holds one priced entry per span, in span order.
	Stages []StageCost
	// CriticalPath lists the stage names along the longest dependency chain,
	// in execution order.
	CriticalPath []string
	// Sequential is startup plus the sum of every stage's cost — the modeled
	// time of a scheduler that runs stages one at a time.
	Sequential time.Duration
	// Total is startup plus the critical-path length — the modeled time with
	// unlimited inter-stage parallelism. Sequential/Total is the pipelining
	// speedup the DAG admits.
	Total time.Duration
}

// PricePlan prices a release's stage spans as a DAG: each stage costs
// PriceSpan and can start only after its dependencies finish. It returns the
// per-stage breakdown, the critical path, and both the sequential and the
// pipelined (critical-path) plan times, each charged one JobStartup.
func (m Model) PricePlan(spans []jobgraph.Span) (PlanCost, error) {
	if err := m.Validate(); err != nil {
		return PlanCost{}, err
	}
	index := make(map[string]int, len(spans))
	for i, s := range spans {
		if _, dup := index[s.Stage]; dup {
			return PlanCost{}, fmt.Errorf("cluster: duplicate stage %q in plan", s.Stage)
		}
		index[s.Stage] = i
	}

	plan := PlanCost{Stages: make([]StageCost, len(spans))}
	costs := make([]Cost, len(spans))
	for i, s := range spans {
		c, err := m.PriceSpan(s)
		if err != nil {
			return PlanCost{}, err
		}
		costs[i] = c
		plan.Sequential += c.Total()
	}

	// finish[i] = cost(i) + max over deps of finish(dep), memoized; pred[i]
	// remembers the arg-max dependency for critical-path extraction. Spans
	// are not required to be topologically ordered, so recurse with a
	// visiting mark to reject cycles defensively.
	finish := make([]time.Duration, len(spans))
	pred := make([]int, len(spans))
	state := make([]int, len(spans)) // 0 unvisited, 1 visiting, 2 done
	var walk func(i int) (time.Duration, error)
	walk = func(i int) (time.Duration, error) {
		switch state[i] {
		case 2:
			return finish[i], nil
		case 1:
			return 0, fmt.Errorf("cluster: dependency cycle through stage %q", spans[i].Stage)
		}
		state[i] = 1
		pred[i] = -1
		var latest time.Duration
		for _, dep := range spans[i].Deps {
			j, ok := index[dep]
			if !ok {
				return 0, fmt.Errorf("cluster: stage %q depends on unknown stage %q", spans[i].Stage, dep)
			}
			f, err := walk(j)
			if err != nil {
				return 0, err
			}
			if f > latest || pred[i] < 0 {
				latest, pred[i] = f, j
			}
		}
		finish[i] = latest + costs[i].Total()
		state[i] = 2
		return finish[i], nil
	}

	tail := -1
	var longest time.Duration
	for i := range spans {
		f, err := walk(i)
		if err != nil {
			return PlanCost{}, err
		}
		plan.Stages[i] = StageCost{Stage: spans[i].Stage, Cost: costs[i], Finish: f}
		if f > longest || tail < 0 {
			longest, tail = f, i
		}
	}
	for i := tail; i >= 0; i = pred[i] {
		plan.CriticalPath = append(plan.CriticalPath, spans[i].Stage)
	}
	for l, r := 0, len(plan.CriticalPath)-1; l < r; l, r = l+1, r-1 {
		plan.CriticalPath[l], plan.CriticalPath[r] = plan.CriticalPath[r], plan.CriticalPath[l]
	}
	plan.Sequential += m.JobStartup
	plan.Total = longest + m.JobStartup
	return plan, nil
}
