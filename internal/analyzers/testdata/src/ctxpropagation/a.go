// Package ctxpropagation is golden-test input for the ctxpropagation
// analyzer, loaded under the synthetic internal import path
// "upa/internal/fake".
package ctxpropagation

import "context"

type Dataset struct{}

func (d *Dataset) Collect() ([]int, error)                           { return nil, nil }
func (d *Dataset) CollectCtx(ctx context.Context) ([]int, error)     { return nil, nil }
func (d *Dataset) Count() (int, error)                               { return 0, nil }
func (d *Dataset) CountCtx(ctx context.Context) (int, error)         { return 0, nil }
func ReduceByKey(d *Dataset, f func(int, int) int) *Dataset          { return d }
func ReduceByKeyCtx(ctx context.Context, d *Dataset, f func(int, int) int) *Dataset {
	return d
}

type Graph struct{}

func (g *Graph) Run(ctx context.Context) error { return nil }

// withCtx has a context in scope: non-Ctx variants are violations.
func withCtx(ctx context.Context, d *Dataset) error {
	if _, err := d.Collect(); err != nil { // want `call to Collect ignores the context.Context ctx in scope; use CollectCtx`
		return err
	}
	_ = ReduceByKey(d, func(a, b int) int { return a + b }) // want `call to ReduceByKey ignores the context.Context ctx`
	if _, err := d.CollectCtx(ctx); err != nil {            // threading ctx: fine
		return err
	}
	// A callee that shares a variant name but is already handed the context
	// is not a violation (jobgraph's Graph.Run takes ctx positionally).
	var g Graph
	return g.Run(ctx)
}

// closures inherit the obligation from the enclosing ctx-taking function.
func inClosure(ctx context.Context, d *Dataset) func() error {
	return func() error {
		_, err := d.Count() // want `call to Count ignores the context.Context ctx in scope; use CountCtx`
		return err
	}
}

// withoutCtx has no context parameter: non-Ctx variants are the caller's
// choice, not a propagation failure.
func withoutCtx(d *Dataset) error {
	_, err := d.Collect()
	return err
}

// background mints root contexts inside internal code.
func background(d *Dataset) error {
	_, err := d.CollectCtx(context.Background()) // want `context.Background\(\) in internal package upa/internal/fake severs the cancellation chain`
	if err != nil {
		return err
	}
	_, err = d.CollectCtx(context.TODO()) // want `context.TODO\(\) in internal package`
	return err
}

// Convenience wrappers at a public API boundary annotate the root context.
func blessedWrapper(d *Dataset) ([]int, error) {
	//upa:allow(ctxpropagation) public convenience wrapper: callers without a context land here
	return d.CollectCtx(context.Background())
}

// A ctx variable shadowing something unrelated does not satisfy the check.
func shadowed(d *Dataset) {
	ctx := 7 // not a context.Context
	_ = ctx
	_, _ = d.Collect() // no ctx param in scope: fine
}
