// Package mapreduce is the Spark substitute underneath UPA: an in-memory,
// multi-goroutine MapReduce/RDD engine with partitioned generic datasets,
// lazy narrow transformations, hash shuffles for wide transformations,
// a worker-pool scheduler with fault injection and lineage-based retry,
// and metered shuffle/cache behaviour.
//
// The engine exists because UPA's correctness and performance arguments rest
// on exactly two properties of big-data operators — commutativity and
// associativity — and on the cost asymmetry between local computation,
// shuffles, and cache hits. All three are reproduced and metered here.
package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Engine schedules partition-level tasks over a bounded worker pool and
// accounts for shuffles, reduce operations, and cache traffic.
type Engine struct {
	workers     int
	maxAttempts int

	metrics Metrics

	// faultMu guards pendingFaults, the number of upcoming task attempts
	// the engine will fail artificially (fault injection for testing
	// lineage-based recovery).
	faultMu       sync.Mutex
	pendingFaults int

	cache *ReductionCache

	// accMu guards accumulators, the named Accumulator registry.
	accMu        sync.Mutex
	accumulators map[string]*Accumulator
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers sets the number of concurrent task slots. Values below one
// fall back to one.
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n < 1 {
			n = 1
		}
		e.workers = n
	}
}

// WithMaxAttempts sets how many times a failing task is retried from lineage
// before the job is abandoned. Values below one fall back to one.
func WithMaxAttempts(n int) Option {
	return func(e *Engine) {
		if n < 1 {
			n = 1
		}
		e.maxAttempts = n
	}
}

// NewEngine builds an engine. By default it uses GOMAXPROCS workers and
// retries each task up to three times.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		workers:     runtime.GOMAXPROCS(0),
		maxAttempts: 3,
	}
	e.cache = newReductionCache(&e.metrics)
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Workers reports the configured worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Cache returns the engine's reduction cache (UPA memoizes R(M(S')) and other
// reusable reductions here; hit rates feed the Figure 4(b) reproduction).
func (e *Engine) Cache() *ReductionCache { return e.cache }

// AccountShuffle records one shuffle round moving records rows between
// partitions. Components that physically move data outside the built-in wide
// transformations (e.g. UPA's RANGE ENFORCER partitioning, §IV-B) use it so
// the overhead accounting matches a real cluster's.
func (e *Engine) AccountShuffle(records int) {
	e.metrics.ShuffleRounds.Add(1)
	e.metrics.RecordsShuffled.Add(int64(records))
}

// AccountReduceOps records n reduce operations performed outside the
// built-in actions (e.g. UPA's in-memory prefix/suffix combines), keeping
// the operation accounting comparable between vanilla and UPA runs.
func (e *Engine) AccountReduceOps(n int64) {
	e.metrics.ReduceOps.Add(n)
}

// InjectFaults arranges for the next n task attempts to fail artificially.
// The scheduler retries them from lineage, exercising the fault-tolerance
// path that commutativity/associativity enable.
func (e *Engine) InjectFaults(n int) {
	e.faultMu.Lock()
	defer e.faultMu.Unlock()
	if n > 0 {
		e.pendingFaults += n
	}
}

// errInjectedFault marks an artificial failure from fault injection.
var errInjectedFault = errors.New("mapreduce: injected task fault")

// ErrTaskFailed is returned when a task keeps failing after all retry
// attempts.
var ErrTaskFailed = errors.New("mapreduce: task failed after retries")

func (e *Engine) takeFault() bool {
	e.faultMu.Lock()
	defer e.faultMu.Unlock()
	if e.pendingFaults > 0 {
		e.pendingFaults--
		return true
	}
	return false
}

// firstErrSlot retains the first error reported by any worker. A plain
// mutex-guarded slot, deliberately not an atomic.Value: workers racing to
// store different concrete error types (context.Canceled vs a wrapped
// ErrTaskFailed) would panic atomic.Value's consistent-typing check.
type firstErrSlot struct {
	mu  sync.Mutex
	err error
}

// set records err if no earlier error is held. A nil err is ignored.
func (s *firstErrSlot) set(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// get returns the held error, or nil.
func (s *firstErrSlot) get() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// runTasks executes task(i) for i in [0, n) on the worker pool. Every task
// attempt may be failed by fault injection; failed attempts are retried up
// to the engine's attempt budget. The first non-retryable error aborts the
// remaining tasks and is returned. Cancelling ctx stops workers from
// claiming new tasks (and from retrying failed attempts) and returns the
// context's error; a cancelled job therefore stops scheduling promptly
// instead of running to completion.
func (e *Engine) runTasks(ctx context.Context, n int, task func(i int) error) error {
	if n == 0 {
		return nil
	}
	workers := e.workers
	if workers > n {
		workers = n
	}

	var (
		next     atomic.Int64
		firstErr firstErrSlot
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if err := ctx.Err(); err != nil {
					firstErr.set(err)
					return
				}
				i := int(next.Add(1) - 1)
				if i >= n || firstErr.get() != nil {
					return
				}
				if err := e.runOneTask(ctx, i, task); err != nil {
					firstErr.set(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr.get()
}

func (e *Engine) runOneTask(ctx context.Context, i int, task func(i int) error) error {
	var lastErr error
	for attempt := 1; attempt <= e.maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err // cancelled between attempts: stop retrying
		}
		e.metrics.TaskAttempts.Add(1)
		if e.takeFault() {
			e.metrics.TaskFaults.Add(1)
			lastErr = errInjectedFault
			continue // retry: recompute from lineage
		}
		if err := task(i); err != nil {
			if errors.Is(err, errInjectedFault) {
				e.metrics.TaskFaults.Add(1)
				lastErr = err
				continue
			}
			return err // application error: not retryable
		}
		e.metrics.TasksRun.Add(1)
		return nil
	}
	return fmt.Errorf("%w: task %d: %v", ErrTaskFailed, i, lastErr)
}

// Metrics exposes the engine's atomic counters. Snapshot with
// MetricsSnapshot for a consistent read.
type Metrics struct {
	TaskAttempts    atomic.Int64
	TasksRun        atomic.Int64
	TaskFaults      atomic.Int64
	RecordsMapped   atomic.Int64
	ReduceOps       atomic.Int64
	ShuffleRounds   atomic.Int64
	RecordsShuffled atomic.Int64
	// RecordsPreCombine counts records entering a map-side combiner — what a
	// combine-less engine would have shuffled. RecordsPostCombine counts the
	// combined records that actually reached the wire, and
	// RecordsCombinedMapSide their difference: records the combiner
	// eliminated before the shuffle.
	RecordsPreCombine      atomic.Int64
	RecordsPostCombine     atomic.Int64
	RecordsCombinedMapSide atomic.Int64
	CacheHits              atomic.Int64
	CacheMisses            atomic.Int64
	BroadcastsSent         atomic.Int64
	BroadcastRecords       atomic.Int64
}

// MetricsSnapshot is a plain-value copy of Metrics.
type MetricsSnapshot struct {
	TaskAttempts           int64
	TasksRun               int64
	TaskFaults             int64
	RecordsMapped          int64
	ReduceOps              int64
	ShuffleRounds          int64
	RecordsShuffled        int64
	RecordsPreCombine      int64
	RecordsPostCombine     int64
	RecordsCombinedMapSide int64
	CacheHits              int64
	CacheMisses            int64
	BroadcastsSent         int64
	BroadcastRecords       int64
}

// Metrics returns a snapshot of the engine counters.
func (e *Engine) Metrics() MetricsSnapshot {
	return MetricsSnapshot{
		TaskAttempts:           e.metrics.TaskAttempts.Load(),
		TasksRun:               e.metrics.TasksRun.Load(),
		TaskFaults:             e.metrics.TaskFaults.Load(),
		RecordsMapped:          e.metrics.RecordsMapped.Load(),
		ReduceOps:              e.metrics.ReduceOps.Load(),
		ShuffleRounds:          e.metrics.ShuffleRounds.Load(),
		RecordsShuffled:        e.metrics.RecordsShuffled.Load(),
		RecordsPreCombine:      e.metrics.RecordsPreCombine.Load(),
		RecordsPostCombine:     e.metrics.RecordsPostCombine.Load(),
		RecordsCombinedMapSide: e.metrics.RecordsCombinedMapSide.Load(),
		CacheHits:              e.metrics.CacheHits.Load(),
		CacheMisses:            e.metrics.CacheMisses.Load(),
		BroadcastsSent:         e.metrics.BroadcastsSent.Load(),
		BroadcastRecords:       e.metrics.BroadcastRecords.Load(),
	}
}

// CacheHitRate returns hits/(hits+misses), or 0 with no traffic.
func (s MetricsSnapshot) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Sub returns the per-field difference s - prev, for metering one phase.
func (s MetricsSnapshot) Sub(prev MetricsSnapshot) MetricsSnapshot {
	return MetricsSnapshot{
		TaskAttempts:           s.TaskAttempts - prev.TaskAttempts,
		TasksRun:               s.TasksRun - prev.TasksRun,
		TaskFaults:             s.TaskFaults - prev.TaskFaults,
		RecordsMapped:          s.RecordsMapped - prev.RecordsMapped,
		ReduceOps:              s.ReduceOps - prev.ReduceOps,
		ShuffleRounds:          s.ShuffleRounds - prev.ShuffleRounds,
		RecordsShuffled:        s.RecordsShuffled - prev.RecordsShuffled,
		RecordsPreCombine:      s.RecordsPreCombine - prev.RecordsPreCombine,
		RecordsPostCombine:     s.RecordsPostCombine - prev.RecordsPostCombine,
		RecordsCombinedMapSide: s.RecordsCombinedMapSide - prev.RecordsCombinedMapSide,
		CacheHits:              s.CacheHits - prev.CacheHits,
		CacheMisses:            s.CacheMisses - prev.CacheMisses,
		BroadcastsSent:         s.BroadcastsSent - prev.BroadcastsSent,
		BroadcastRecords:       s.BroadcastRecords - prev.BroadcastRecords,
	}
}
