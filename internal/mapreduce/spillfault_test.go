package mapreduce

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"upa/internal/chaos"
	"upa/internal/checksum"
)

// TestSpillCorruptionEveryByte is the exhaustive detection gate: flipping any
// single byte of a spill file must yield either the identical records or a
// typed ErrSpillCorrupt — never silently different data. Every region of the
// format (magic, version, count, header CRC, frame uvarints, payload, frame
// CRC) is covered because every byte is.
func TestSpillCorruptionEveryByte(t *testing.T) {
	recs := make([]Pair[string, int], 40)
	for i := range recs {
		recs[i] = Pair[string, int]{Key: fmt.Sprintf("key-%02d", i), Value: i * 31}
	}
	var buf bytes.Buffer
	if _, err := writeSpill(&buf, recs); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	for off := 0; off < len(clean); off++ {
		for _, mask := range []byte{0x01, 0xFF} {
			mut := make([]byte, len(clean))
			copy(mut, clean)
			mut[off] ^= mask
			got, err := readSpill[Pair[string, int]](bytes.NewReader(mut), int64(len(mut)), len(recs))
			if err != nil {
				if !errors.Is(err, ErrSpillCorrupt) {
					t.Fatalf("offset %d mask %#x: error is not typed ErrSpillCorrupt: %v", off, mask, err)
				}
				continue
			}
			// A read that succeeds despite the flip must return the exact
			// original records (possible only if some byte were dead space —
			// the format has none, but the contract is what matters).
			if len(got) != len(recs) {
				t.Fatalf("offset %d mask %#x: silent record-count change %d != %d", off, mask, len(got), len(recs))
			}
			for i := range recs {
				if got[i] != recs[i] {
					t.Fatalf("offset %d mask %#x: silently different record %d: %v != %v", off, mask, i, got[i], recs[i])
				}
			}
		}
	}
}

// TestSpillTruncationEveryLength: every proper prefix of a spill file must
// fail loudly. Truncation at a frame boundary is the shape only the header
// record count can catch.
func TestSpillTruncationEveryLength(t *testing.T) {
	recs := intsUpTo(600) // two frames at spillBatch=512
	var buf bytes.Buffer
	if _, err := writeSpill(&buf, recs); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for n := 0; n < len(clean); n++ {
		_, err := readSpill[int](bytes.NewReader(clean[:n]), int64(n), len(recs))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes read without error", n, len(clean))
		}
		if !errors.Is(err, ErrSpillCorrupt) {
			t.Fatalf("prefix of %d bytes: error is not typed ErrSpillCorrupt: %v", n, err)
		}
	}
}

// TestSpillFrameCapNoOOM is the regression test for the unvalidated frame
// size: a corrupt uvarint demanding an absurd allocation must fail fast with
// a typed error — with or without a known file size — instead of attempting
// a multi-gigabyte make([]byte, n).
func TestSpillFrameCapNoOOM(t *testing.T) {
	var buf bytes.Buffer
	var hdr [spillHeaderLen]byte
	copy(hdr[:8], spillMagic)
	binary.LittleEndian.PutUint16(hdr[8:10], spillVersion)
	binary.LittleEndian.PutUint64(hdr[10:18], 1)
	binary.LittleEndian.PutUint32(hdr[18:22], checksum.Sum(hdr[:18]))
	buf.Write(hdr[:])
	var varint [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(varint[:], 1)
	buf.Write(varint[:n])
	n = binary.PutUvarint(varint[:], 1<<62) // frame claims 4 EiB
	buf.Write(varint[:n])

	for _, size := range []int64{-1, int64(buf.Len())} {
		_, err := readSpill[int](bytes.NewReader(buf.Bytes()), size, 1)
		if err == nil {
			t.Fatalf("size=%d: 4 EiB frame claim read without error", size)
		}
		if !errors.Is(err, ErrSpillCorrupt) {
			t.Fatalf("size=%d: error is not typed ErrSpillCorrupt: %v", size, err)
		}
	}

	// With a known file size, even a sub-cap claim larger than the remaining
	// bytes is rejected before allocation.
	var small bytes.Buffer
	small.Write(hdr[:])
	n = binary.PutUvarint(varint[:], 1)
	small.Write(varint[:n])
	n = binary.PutUvarint(varint[:], 1<<20) // 1 MiB claimed, ~0 bytes present
	small.Write(varint[:n])
	if _, err := readSpill[int](bytes.NewReader(small.Bytes()), int64(small.Len()), 1); !errors.Is(err, ErrSpillCorrupt) {
		t.Fatalf("over-remaining frame claim: %v", err)
	}
}

// TestSpillHeaderValidation pins the header checks: wrong magic, a version
// from the future, and an empty file are all typed corruption errors.
func TestSpillHeaderValidation(t *testing.T) {
	mk := func(magic string, version uint16, fixCRC bool) []byte {
		var hdr [spillHeaderLen]byte
		copy(hdr[:8], magic)
		binary.LittleEndian.PutUint16(hdr[8:10], version)
		binary.LittleEndian.PutUint64(hdr[10:18], 0)
		if fixCRC {
			binary.LittleEndian.PutUint32(hdr[18:22], checksum.Sum(hdr[:18]))
		}
		return hdr[:]
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", []byte(spillMagic)},
		{"bad-magic", mk("NOTSPILL", spillVersion, true)},
		{"future-version", mk(spillMagic, spillVersion+1, true)},
		{"bad-header-crc", mk(spillMagic, spillVersion, false)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := readSpill[int](bytes.NewReader(tc.data), int64(len(tc.data)), 0); !errors.Is(err, ErrSpillCorrupt) {
				t.Fatalf("read = %v, want ErrSpillCorrupt", err)
			}
			if err := verifySpill(bytes.NewReader(tc.data), int64(len(tc.data))); !errors.Is(err, ErrSpillCorrupt) {
				t.Fatalf("verify = %v, want ErrSpillCorrupt", err)
			}
		})
	}
}

// diskFaultPolicy is a chaos policy with only the given storage-fault rates
// armed — task-level fault injection stays off so the tests isolate the disk
// path.
func diskFaultPolicy(seed uint64, set func(p *chaos.Policy)) chaos.Policy {
	p := chaos.Policy{Seed: seed}
	set(&p)
	return p
}

// TestSpillENOSPCFallsBackToMemory: when the disk refuses every spill write
// (injected ENOSPC on each attempt), a budget-0 engine must degrade to
// in-memory retention — correct output, fallback and retry counters up, and
// no published spill files.
func TestSpillENOSPCFallsBackToMemory(t *testing.T) {
	clean := func() []Pair[int, int] {
		eng := NewEngine(WithWorkers(2))
		defer eng.Close()
		return spillPipeline(t, eng)
	}()

	eng := NewEngine(WithWorkers(2), WithMaxAttempts(4), WithMemoryBudget(0),
		WithChaos(chaos.New(diskFaultPolicy(11, func(p *chaos.Policy) {
			p.DiskENOSPCRate = 0.999999 // every attempt, every file
		}))))
	defer eng.Close()
	got := spillPipeline(t, eng)

	if len(got) != len(clean) {
		t.Fatalf("ENOSPC run returned %d records, clean run %d", len(got), len(clean))
	}
	for i := range clean {
		if got[i] != clean[i] {
			t.Fatalf("record %d: %v under ENOSPC, %v clean", i, got[i], clean[i])
		}
	}
	m := eng.Metrics()
	if m.SpillFallbacksInMemory == 0 {
		t.Error("no in-memory fallbacks recorded under total ENOSPC")
	}
	if m.SpillWriteRetries == 0 {
		t.Error("no write retries recorded under total ENOSPC")
	}
	if m.SpillFiles != 0 {
		t.Errorf("%d spill files published under total ENOSPC", m.SpillFiles)
	}
	cs := eng.Chaos().Snapshot()
	if cs.DiskENOSPCs == 0 {
		t.Error("injector recorded no ENOSPC decisions")
	}
	// No partial .tmp files may survive the failed writes.
	for _, f := range spillDirEntries(t, eng) {
		if strings.HasSuffix(f, ".tmp") {
			t.Errorf("orphaned partial spill file %s", f)
		}
	}
}

// TestSpillWriteFaultsRetryAndPublish: transient write errors, torn writes,
// and rename failures must be retried until a verified file lands — output
// byte-identical to a clean run, every published file structurally valid.
func TestSpillWriteFaultsRetryAndPublish(t *testing.T) {
	clean := func() []Pair[int, int] {
		eng := NewEngine(WithWorkers(2))
		defer eng.Close()
		return spillPipeline(t, eng)
	}()

	eng := NewEngine(WithWorkers(2), WithMaxAttempts(6), WithMemoryBudget(0),
		WithChaos(chaos.New(diskFaultPolicy(5, func(p *chaos.Policy) {
			p.DiskWriteErrorRate = 0.2
			p.DiskTornWriteRate = 0.2
			p.DiskRenameErrorRate = 0.2
		}))))
	defer eng.Close()
	got := spillPipeline(t, eng)

	for i := range clean {
		if got[i] != clean[i] {
			t.Fatalf("record %d: %v under write faults, %v clean", i, got[i], clean[i])
		}
	}
	m := eng.Metrics()
	if m.SpillWriteRetries == 0 {
		t.Error("no write retries recorded; raise the fault rates")
	}
	cs := eng.Chaos().Snapshot()
	if cs.DiskWriteErrors+cs.DiskTornWrites+cs.DiskRenameErrors == 0 {
		t.Error("no write-path faults landed; test exercised nothing")
	}
	// Torn writes are caught by verify-on-write, so every published file must
	// pass verification against the real filesystem.
	for _, f := range spillDirEntries(t, eng) {
		if strings.HasSuffix(f, ".tmp") {
			t.Errorf("orphaned partial spill file %s", f)
			continue
		}
		fh, err := os.Open(f)
		if err != nil {
			t.Fatalf("open %s: %v", f, err)
		}
		info, _ := fh.Stat()
		if err := verifySpill(fh, info.Size()); err != nil {
			t.Errorf("published spill file %s fails verification: %v", f, err)
		}
		fh.Close()
	}
}

// TestSpillReadFaultRecovery: injected read errors and in-flight corruption
// must be detected (typed, counted) and healed — by re-reads for transient
// faults and by lineage recomputation for lineage-backed stores — with the
// final output byte-identical to a clean run.
func TestSpillReadFaultRecovery(t *testing.T) {
	clean := func() []Pair[int, int] {
		eng := NewEngine(WithWorkers(2))
		defer eng.Close()
		return spillPipeline(t, eng)
	}()

	eng := NewEngine(WithWorkers(2), WithMaxAttempts(8), WithMemoryBudget(0),
		WithChaos(chaos.New(diskFaultPolicy(23, func(p *chaos.Policy) {
			p.DiskReadErrorRate = 0.25
			p.DiskCorruptionRate = 0.25
		}))))
	defer eng.Close()
	got := spillPipeline(t, eng)

	if len(got) != len(clean) {
		t.Fatalf("faulty run returned %d records, clean run %d", len(got), len(clean))
	}
	for i := range clean {
		if got[i] != clean[i] {
			t.Fatalf("record %d: %v under read faults, %v clean", i, got[i], clean[i])
		}
	}
	m := eng.Metrics()
	cs := eng.Chaos().Snapshot()
	if cs.DiskCorruptions == 0 && cs.DiskReadErrors == 0 {
		t.Fatal("no read-path faults landed; test exercised nothing")
	}
	if cs.DiskCorruptions > 0 && m.SpillCorruptionsDetected == 0 {
		t.Error("corruption injected but never detected")
	}
}

// TestSpillRecomputeFromLineage drives the recovery path deterministically:
// a persisted dataset's spill file is corrupted on disk (not in flight), so
// every re-read fails its checksum and only lineage recomputation can
// produce the records — which must match, bump SpillRecomputes, and heal the
// file for the next reader.
func TestSpillRecomputeFromLineage(t *testing.T) {
	eng := NewEngine(WithMemoryBudget(0), WithMaxAttempts(3))
	defer eng.Close()
	d, err := FromSlice(eng, intsUpTo(300), 2)
	if err != nil {
		t.Fatal(err)
	}
	squared := Map(d, func(x int) int { return x * x }).Persist()
	first, err := squared.Collect()
	if err != nil {
		t.Fatal(err)
	}

	// Rot every persisted spill file on disk: flip one payload byte in place.
	var rotted int
	for _, f := range spillDirEntries(t, eng) {
		if !strings.Contains(f, "persist") {
			continue
		}
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-5] ^= 0xFF // inside the last frame's payload or CRC
		if err := os.WriteFile(f, data, 0o644); err != nil {
			t.Fatal(err)
		}
		rotted++
	}
	if rotted == 0 {
		t.Fatal("no persisted spill files found to corrupt")
	}

	second, err := squared.Collect()
	if err != nil {
		t.Fatalf("collect after on-disk rot: %v", err)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("value %d: %d before rot, %d recovered", i, first[i], second[i])
		}
	}
	m := eng.Metrics()
	if m.SpillCorruptionsDetected == 0 {
		t.Error("on-disk rot never detected")
	}
	if m.SpillRecomputes == 0 {
		t.Error("no lineage recomputation recorded")
	}

	// The heal rewrote the files: a third read must succeed without another
	// recomputation.
	recomputes := m.SpillRecomputes
	if _, err := squared.Collect(); err != nil {
		t.Fatalf("collect after heal: %v", err)
	}
	if got := eng.Metrics().SpillRecomputes; got != recomputes {
		t.Errorf("healed file recomputed again: %d -> %d", recomputes, got)
	}
}

// TestSpillSourceRotFailsLoudly: a source store has no lineage to recompute
// from, so unrecoverable on-disk rot of its files must surface as a typed
// error — honest failure, never silently wrong records.
func TestSpillSourceRotFailsLoudly(t *testing.T) {
	eng := NewEngine(WithMemoryBudget(0), WithMaxAttempts(2))
	defer eng.Close()
	d, err := FromSlice(eng, intsUpTo(200), 2)
	if err != nil {
		t.Fatal(err)
	}
	files := spillDirEntries(t, eng)
	if len(files) == 0 {
		t.Fatal("budget-0 source wrote no spill files")
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		data[spillHeaderLen+3] ^= 0xFF
		if err := os.WriteFile(f, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, err = d.Collect()
	if err == nil {
		t.Fatal("collect over rotted irreproducible source succeeded")
	}
	if !errors.Is(err, ErrSpillCorrupt) {
		t.Fatalf("error is not typed ErrSpillCorrupt: %v", err)
	}
}

// TestSpillStoreCloseRace is the -race regression test for close racing
// in-flight I/O: concurrent spill writes, streaming reads, and whole-file
// reads during Close must each either complete cleanly or fail with the
// typed closed error — never crash, never read a yanked file, never strand
// the temp directory.
func TestSpillStoreCloseRace(t *testing.T) {
	for round := 0; round < 5; round++ {
		eng := NewEngine(WithMemoryBudget(0))
		recs := intsUpTo(500)
		seed, err := spillWrite(eng.spill, "seed.spill", recs)
		if err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		start := make(chan struct{})
		fail := func(op string, err error) {
			if err != nil && !errors.Is(err, errSpillClosed) {
				t.Errorf("%s during close: %v", op, err)
			}
		}
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; ; i++ {
					_, err := spillWrite(eng.spill, fmt.Sprintf("race-%d-%d.spill", g, i), recs)
					if err != nil {
						fail("write", err)
						return
					}
				}
			}(g)
		}
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for {
					r, closeFn, err := spillOpen[int](eng.spill, seed)
					if err != nil {
						fail("open", err)
						return
					}
					for {
						_, ok, err := r.next()
						if err != nil || !ok {
							fail("stream", err)
							break
						}
					}
					closeFn()
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for {
				if _, err := spillRead[int](eng.spill, seed, len(recs)); err != nil {
					fail("read", err)
					return
				}
			}
		}()

		dir := eng.SpillDir()
		close(start)
		if err := eng.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		wg.Wait()
		if _, err := os.Stat(dir); !os.IsNotExist(err) {
			t.Fatalf("spill dir %s survived Close (stat err: %v)", dir, err)
		}
	}
}

// TestChaosFSDeterministicFates pins the fault model's coordinates: the same
// (seed, op, file, attempt) always draws the same fate, and a different seed
// draws independently.
func TestChaosFSDeterministicFates(t *testing.T) {
	outcome := func(seed uint64) []bool {
		inj := chaos.New(diskFaultPolicy(seed, func(p *chaos.Policy) {
			p.DiskWriteErrorRate = 0.5
		}))
		fs := newChaosFS(osFS{}, func() *chaos.Injector { return inj })
		dir := t.TempDir()
		var fates []bool
		for i := 0; i < 32; i++ {
			f, err := fs.Create(fmt.Sprintf("%s/f-%02d.spill", dir, i))
			fates = append(fates, err != nil)
			if err == nil {
				f.Close()
			}
		}
		return fates
	}
	a, b := outcome(42), outcome(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fate %d differs across identical seeds", i)
		}
	}
	c := outcome(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("seeds 42 and 43 drew identical fates at every site; hash is not mixing the seed")
	}
}
