package bench

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"upa/internal/flex"
	"upa/internal/mapreduce"
	"upa/internal/stats"
)

// SensitivityRow is one bar group of Figure 2(a): the RMSE between the
// locally inferred sensitivities (UPA's sampled estimate; FLEX's static
// estimate) and the brute-force ground truth, across Trials independently
// generated workloads, normalized by the mean ground-truth magnitude.
type SensitivityRow struct {
	Query string
	// UPARelRMSE and FLEXRelRMSE are relative RMSEs (fractions of the mean
	// ground-truth sensitivity; the paper's "3.81%" is 0.0381 here).
	UPARelRMSE  float64
	FLEXRelRMSE float64
	// FLEXSupported is false for the four queries FLEX cannot analyze.
	FLEXSupported bool
	// MeanTruth, MeanUPA and MeanFLEX are the trial-mean sensitivities, for
	// inspection.
	MeanTruth, MeanUPA, MeanFLEX float64
}

// Fig2a regenerates Figure 2(a).
func Fig2a(cfg Config) ([]SensitivityRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	type acc struct {
		upa, truth, flexSens []float64
		flexSupported        bool
	}
	byQuery := make(map[string]*acc, 9)
	for _, name := range QueryNames() {
		byQuery[name] = &acc{}
	}

	for trial := 0; trial < cfg.Trials; trial++ {
		w, err := cfg.Workload(trial)
		if err != nil {
			return nil, err
		}
		for _, r := range w.All() {
			a := byQuery[r.Name()]
			eng := mapreduce.NewEngine()

			truth, err := r.GroundTruth(eng, cfg.Additions, stats.NewRNG(cfg.Seed+uint64(trial)))
			if err != nil {
				return nil, fmt.Errorf("bench: truth for %s: %w", r.Name(), err)
			}
			sys, err := cfg.newSystem(eng, cfg.SampleSize)
			if err != nil {
				return nil, err
			}
			res, err := r.RunUPA(sys)
			if err != nil {
				return nil, fmt.Errorf("bench: UPA on %s: %w", r.Name(), err)
			}
			// Compare per output coordinate.
			for d := range truth.LocalSensitivity {
				a.truth = append(a.truth, truth.LocalSensitivity[d])
				a.upa = append(a.upa, res.EmpiricalLocalSensitivity[d])
			}

			plan, err := r.FLEXPlan(eng)
			if err != nil {
				return nil, err
			}
			if fs, err := plan.LocalSensitivity(); err == nil {
				a.flexSupported = true
				// FLEX emits one scalar bound; it applies to the count
				// output (coordinate 0).
				a.flexSens = append(a.flexSens, fs)
			} else if !errors.Is(err, flex.ErrUnsupported) {
				return nil, err
			}
		}
	}

	rows := make([]SensitivityRow, 0, 9)
	for _, name := range QueryNames() {
		a := byQuery[name]
		row := SensitivityRow{Query: name, FLEXSupported: a.flexSupported}
		rel, err := stats.RelativeRMSE(a.upa, a.truth)
		if err != nil {
			return nil, err
		}
		row.UPARelRMSE = rel
		row.MeanTruth = mean(a.truth)
		row.MeanUPA = mean(a.upa)
		if a.flexSupported {
			// FLEX's scalar bound is compared against the coordinate-0
			// ground truth of each trial.
			truth0 := make([]float64, 0, len(a.flexSens))
			stride := len(a.truth) / cfg.Trials
			for trial := 0; trial < cfg.Trials; trial++ {
				truth0 = append(truth0, a.truth[trial*stride])
			}
			rel, err := stats.RelativeRMSE(a.flexSens, truth0)
			if err != nil {
				return nil, err
			}
			row.FLEXRelRMSE = rel
			row.MeanFLEX = mean(a.flexSens)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig2a renders the RMSE comparison as aligned text (log-scale
// magnitudes, like the paper's figure).
func RenderFig2a(rows []SensitivityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2(a): relative RMSE of inferred local sensitivity vs ground truth\n")
	fmt.Fprintf(&b, "%-18s %14s %14s %12s %14s %14s\n",
		"Query", "UPA RMSE", "FLEX RMSE", "log10(F/U)", "truth sens", "FLEX sens")
	var upaSum float64
	for _, r := range rows {
		flexCol, ratioCol := "unsupported", "-"
		if r.FLEXSupported {
			flexCol = fmt.Sprintf("%.4g", r.FLEXRelRMSE)
			if r.UPARelRMSE > 0 && r.FLEXRelRMSE > 0 {
				ratioCol = fmt.Sprintf("%.1f", math.Log10(r.FLEXRelRMSE/r.UPARelRMSE))
			} else if r.FLEXRelRMSE > 0 {
				ratioCol = "inf"
			}
		}
		fmt.Fprintf(&b, "%-18s %14.4g %14s %12s %14.4g %14.4g\n",
			r.Query, r.UPARelRMSE, flexCol, ratioCol, r.MeanTruth, r.MeanFLEX)
		upaSum += r.UPARelRMSE
	}
	fmt.Fprintf(&b, "UPA mean relative RMSE over all queries: %.2f%%\n", 100*upaSum/float64(len(rows)))
	return b.String()
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}
