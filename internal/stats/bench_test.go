package stats

import "testing"

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}

func BenchmarkSampleIndicesSparse(b *testing.B) {
	r := NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.SampleIndices(1_000_000, 1000) // Floyd path: O(k)
	}
}

func BenchmarkSampleIndicesDense(b *testing.B) {
	r := NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.SampleIndices(2000, 1000) // Fisher-Yates path
	}
}

func BenchmarkQuantile(b *testing.B) {
	n := Normal{Mu: 3, Sigma: 2}
	for i := 0; i < b.N; i++ {
		if _, err := n.Quantile(0.99); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitNormalMLE(b *testing.B) {
	r := NewRNG(1)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitNormalMLE(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLaplaceSample(b *testing.B) {
	r := NewRNG(1)
	l := Laplace{Mu: 0, B: 10}
	for i := 0; i < b.N; i++ {
		_ = l.Sample(r)
	}
}
