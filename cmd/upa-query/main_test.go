package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func smallArgs(extra ...string) []string {
	base := []string{"-lineitems", "2000", "-lsrecords", "1500", "-n", "150"}
	return append(base, extra...)
}

func TestList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 9 {
		t.Fatalf("listed %d queries, want 9:\n%s", len(lines), out.String())
	}
}

func TestReleaseEveryQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("releases all nine queries")
	}
	for _, name := range []string{"TPCH1", "TPCH4", "TPCH13", "TPCH16", "TPCH21",
		"KMeans", "Linear Regression", "TPCH6", "TPCH11"} {
		name := name
		t.Run(name, func(t *testing.T) {
			var out strings.Builder
			if err := run(smallArgs("-query", name), &out); err != nil {
				t.Fatal(err)
			}
			text := out.String()
			for _, want := range []string{"released (noisy)", "local sensitivity", "enforced range", "engine:"} {
				if !strings.Contains(text, want) {
					t.Errorf("output missing %q", want)
				}
			}
		})
	}
}

func TestRepeatTriggersEnforcer(t *testing.T) {
	var out strings.Builder
	if err := run(smallArgs("-query", "TPCH6", "-repeat", "2"), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "release 2") {
		t.Fatal("second release missing")
	}
	// Rerunning the identical query on the identical dataset collides in
	// the RANGE ENFORCER.
	if !strings.Contains(text, "attack suspected:   true") {
		t.Errorf("repeated identical query not flagged:\n%s", text)
	}
}

func TestJSONOutput(t *testing.T) {
	var out strings.Builder
	if err := run(smallArgs("-query", "TPCH1", "-json", "-repeat", "2"), &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("emitted %d JSON lines, want 2", len(lines))
	}
	for i, line := range lines {
		var rep struct {
			Query       string    `json:"query"`
			Release     int       `json:"release"`
			Output      []float64 `json:"output"`
			Sensitivity []float64 `json:"sensitivity"`
			SampleSize  int       `json:"sampleSize"`
		}
		if err := json.Unmarshal([]byte(line), &rep); err != nil {
			t.Fatalf("line %d is not JSON: %v", i, err)
		}
		if rep.Query != "TPCH1" || rep.Release != i+1 {
			t.Errorf("line %d: query/release = %s/%d", i, rep.Query, rep.Release)
		}
		if len(rep.Output) != 1 || len(rep.Sensitivity) != 1 || rep.SampleSize != 150 {
			t.Errorf("line %d: malformed report %+v", i, rep)
		}
	}
}

func TestUnknownQuery(t *testing.T) {
	var out strings.Builder
	if err := run(smallArgs("-query", "TPCH99"), &out); err == nil {
		t.Fatal("unknown query accepted")
	}
}

func TestBadEpsilon(t *testing.T) {
	var out strings.Builder
	if err := run(smallArgs("-epsilon", "-1"), &out); err == nil {
		t.Fatal("negative epsilon accepted")
	}
}
