package flex

import (
	"errors"
	"math"
	"testing"
)

func TestSmoothSensitivityNoJoins(t *testing.T) {
	p := Plan{Name: "tpch1", CountQuery: true}
	got, err := p.SmoothSensitivity(0.1)
	if err != nil {
		t.Fatal(err)
	}
	// elasticAt(t) == 1 for all t, so the max of e^{-beta t} is at t = 0.
	if got != 1 {
		t.Fatalf("smooth sensitivity = %v, want 1", got)
	}
}

func TestSmoothSensitivityUpperBoundsLocal(t *testing.T) {
	p := Plan{
		Name:       "q",
		CountQuery: true,
		Joins:      []Join{{Left: stats(100, 50, 7), Right: stats(200, 80, 11)}},
	}
	local, err := p.LocalSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	for _, beta := range []float64{0.01, 0.1, 1} {
		smooth, err := p.SmoothSensitivity(beta)
		if err != nil {
			t.Fatal(err)
		}
		if smooth < local {
			t.Fatalf("beta=%v: smooth %v below local %v (t=0 term alone gives local)",
				beta, smooth, local)
		}
	}
}

func TestSmoothSensitivityDecreasesWithBeta(t *testing.T) {
	p := Plan{
		Name:       "q",
		CountQuery: true,
		Joins:      []Join{{Left: stats(1000, 100, 20), Right: stats(1000, 100, 20)}},
	}
	prev := math.Inf(1)
	for _, beta := range []float64{0.01, 0.05, 0.2, 1} {
		smooth, err := p.SmoothSensitivity(beta)
		if err != nil {
			t.Fatal(err)
		}
		if smooth > prev {
			t.Fatalf("smooth sensitivity not monotone in beta: %v then %v", prev, smooth)
		}
		prev = smooth
	}
}

func TestSmoothSensitivityMatchesAnalyticPeak(t *testing.T) {
	// One join with equal frequencies f: s(t) = e^{-bt} (f+t)^2 peaks at
	// t* = 2/b - f (continuous); compare against the discrete max.
	f := 10.0
	beta := 0.05
	p := Plan{
		Name:       "q",
		CountQuery: true,
		Joins:      []Join{{Left: stats(1000, 100, int(f)), Right: stats(1000, 100, int(f))}},
	}
	got, err := p.SmoothSensitivity(beta)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for t0 := 0; t0 < 10000; t0++ {
		s := math.Exp(-beta*float64(t0)) * (f + float64(t0)) * (f + float64(t0))
		if s > want {
			want = s
		}
	}
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("smooth sensitivity = %v, want %v", got, want)
	}
}

func TestSmoothSensitivityValidation(t *testing.T) {
	p := Plan{Name: "ml", CountQuery: false}
	if _, err := p.SmoothSensitivity(0.1); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("non-count error = %v, want ErrUnsupported", err)
	}
	c := Plan{Name: "c", CountQuery: true}
	if _, err := c.SmoothSensitivity(0); err == nil {
		t.Fatal("beta 0 accepted")
	}
	bad := Plan{Name: "b", CountQuery: true, Joins: []Join{{Left: stats(1, 2, 3), Right: stats(5, 2, 1)}}}
	if _, err := bad.SmoothSensitivity(0.1); err == nil {
		t.Fatal("invalid column stats accepted")
	}
}
