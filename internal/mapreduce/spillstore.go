package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// spillStore is the engine's memory-budget accountant and temp-file
// allocator. Every materialization that would retain records in memory
// (source partitions, persisted datasets, shuffle buckets, sorted runs)
// first asks admit; past the budget the materialization is written to
// deterministic checksummed temp files instead and read back on demand.
//
// The temp directory is created lazily on the first spill, so engines that
// never exceed their budget (including every engine with the default
// unlimited budget) touch no disk at all. Close removes the directory.
//
// The store distrusts the disk: every write is re-read and structurally
// verified before publication (catching torn writes while the records are
// still in hand), every read checks the v2 format's header and frame
// checksums, and all I/O goes through the fs indirection so the chaos
// layer can inject storage faults underneath the real recovery paths.
type spillStore struct {
	metrics *Metrics

	// fs is the filesystem indirection: osFS in production, chaosFS when
	// the engine has a fault injector armed.
	fs spillFS

	// budget is the in-memory byte ceiling: negative means unlimited, zero
	// spills every materialization. retained is the running total of bytes
	// admitted in memory; it is never decremented — an engine is scoped to
	// a job or serving session, and once its working set has filled the
	// budget, later materializations belong on disk.
	budget   int64
	retained atomic.Int64

	// seq disambiguates stores whose datasets share a lineage name (two
	// independent "source" datasets must not overwrite each other's files).
	seq atomic.Uint64

	mu     sync.Mutex
	dir    string //upa:guardedby(mu)
	closed bool   //upa:guardedby(mu)
	// inflight counts I/O operations between beginIO and their release;
	// close waits for it to drain before removing the directory, so a
	// concurrent write or streaming read never sees its file yanked away
	// mid-flight (and never strands a .tmp in a half-removed tree).
	inflight sync.WaitGroup
}

// errSpillClosed reports I/O attempted after close. It is terminal: unlike
// an injected disk fault, retrying cannot help.
var errSpillClosed = errors.New("mapreduce: spill store closed")

// admit reports whether a materialization of estimated size n may stay in
// memory, reserving the bytes if so.
func (st *spillStore) admit(n int64) bool {
	if st.budget < 0 {
		return true
	}
	for {
		cur := st.retained.Load()
		if cur+n > st.budget {
			return false
		}
		if st.retained.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// beginIO registers one in-flight I/O operation against close, lazily
// creating the spill directory. The returned release must be called when
// the operation's file handles are closed; until then close blocks rather
// than removing the directory out from under it.
func (st *spillStore) beginIO() (dir string, release func(), err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return "", nil, errSpillClosed
	}
	if st.dir == "" {
		dir, err := st.fs.MkdirTemp("upa-spill-*")
		if err != nil {
			return "", nil, fmt.Errorf("mapreduce: create spill dir: %w", err)
		}
		st.dir = dir
	}
	st.inflight.Add(1)
	var once sync.Once
	return st.dir, func() { once.Do(st.inflight.Done) }, nil
}

// close removes the spill directory and everything in it, after waiting for
// in-flight I/O to drain. New I/O started after close begins fails with
// errSpillClosed. Idempotent.
func (st *spillStore) close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	dir := st.dir
	st.dir = ""
	st.mu.Unlock()
	st.inflight.Wait()
	if dir == "" {
		return nil
	}
	return st.fs.RemoveAll(dir)
}

// spillWrite spills recs under a deterministic file name: write to a .tmp
// sibling, verify the bytes that actually landed, then rename — so a file
// either exists complete and checksum-clean or not at all, and a retried
// task rewriting its spill lands the identical bytes atomically. The
// verification read is what catches a torn write (a silently dropped tail
// that still reported success) while the records are still in hand to
// retry, instead of at some much later read with the lineage gone cold.
func spillWrite[T any](st *spillStore, name string, recs []T) (string, error) {
	dir, release, err := st.beginIO()
	if err != nil {
		return "", err
	}
	defer release()
	path := filepath.Join(dir, name)
	tmp := path + ".tmp"
	f, err := st.fs.Create(tmp)
	if err != nil {
		return "", err
	}
	n, err := writeSpill(f, recs)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = verifySpillFile(st, tmp)
	}
	if err == nil {
		err = st.fs.Rename(tmp, path)
	}
	if err != nil {
		st.fs.Remove(tmp)
		return "", err
	}
	st.metrics.SpillFiles.Add(1)
	st.metrics.SpilledBytes.Add(n)
	return path, nil
}

// verifySpillFile re-reads path and checks its structural integrity
// (header + every frame checksum + record count) without decoding records.
func verifySpillFile(st *spillStore, path string) error {
	f, size, err := st.fs.Open(path)
	if err != nil {
		return fmt.Errorf("mapreduce: verify spill: %w", err)
	}
	verr := verifySpill(f, size)
	if cerr := f.Close(); verr == nil {
		verr = cerr
	}
	return verr
}

// spillWriteRetry is spillWrite under the engine's retry policy: transient
// failures — injected disk faults, verification failures, real EIO — are
// retried with the policy's seeded backoff. The caller decides what a final
// failure means (storeParts degrades to in-memory retention; a recovery
// rewrite is best-effort).
func spillWriteRetry[T any](eng *Engine, site, name string, part int, recs []T) (string, error) {
	maxAttempts := eng.policy.Attempts()
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if attempt > 1 {
			eng.metrics.SpillWriteRetries.Add(1)
			if d := eng.policy.Backoff(site+":spill-write", part, attempt-1); d > 0 {
				eng.metrics.BackoffNanos.Add(int64(d))
				time.Sleep(d)
			}
		}
		path, err := spillWrite(eng.spill, name, recs)
		if err == nil {
			return path, nil
		}
		if errors.Is(err, ErrSpillCorrupt) {
			// The verification read caught a torn or corrupted landing.
			eng.metrics.SpillCorruptionsDetected.Add(1)
		}
		if errors.Is(err, errSpillClosed) {
			return "", err
		}
		lastErr = err
	}
	return "", fmt.Errorf("mapreduce: %s: spill write %s gave up after %d attempts: %w",
		site, name, maxAttempts, lastErr)
}

// spillRead reads a whole spill file back as an owned slice.
func spillRead[T any](st *spillStore, path string, count int) ([]T, error) {
	_, release, err := st.beginIO()
	if err != nil {
		return nil, err
	}
	defer release()
	f, size, err := st.fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: open spill: %w", err)
	}
	defer f.Close()
	st.metrics.SpillReads.Add(1)
	return readSpill[T](f, size, count)
}

// spillOpen opens a streaming reader over a spill file. The caller owns the
// returned close function (which also releases the store's in-flight hold).
func spillOpen[T any](st *spillStore, path string) (*spillReader[T], func() error, error) {
	_, release, err := st.beginIO()
	if err != nil {
		return nil, nil, err
	}
	f, size, err := st.fs.Open(path)
	if err != nil {
		release()
		return nil, nil, fmt.Errorf("mapreduce: open spill: %w", err)
	}
	st.metrics.SpillReads.Add(1)
	return newSpillReader[T](f, size), func() error {
		err := f.Close()
		release()
		return err
	}, nil
}

// sanitizeSite turns a lineage site name into a file-name-safe fragment.
func sanitizeSite(site string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, site)
}

// partStore holds one stage's materialized partitions (or shuffle buckets):
// shared in-memory slices, spill files, or a mix (partitions whose writes
// kept failing degrade to memory). The partition data is immutable after
// construction, so concurrent reads need no lock; healMu only serializes
// best-effort rewrites of a corrupted file.
type partStore[T any] struct {
	eng    *Engine
	site   string
	mem    [][]T    // mem[i] is partition i when retained in memory
	files  []string // files[i] is partition i's spill file ("" when in memory)
	names  []string // names[i] is files[i]'s base name, for recovery rewrites
	counts []int

	// recompute re-materializes partition i from dataset lineage — the same
	// compute closure the store sits behind. It is the store's corruption
	// escape hatch: when a spill file fails its checksums, get recomputes
	// the partition and heals the file instead of failing the job. Nil for
	// source stores, whose records have no lineage upstream of the store.
	recompute func(ctx context.Context, i int) ([]T, error)

	healMu sync.Mutex
}

// storeParts admits parts against the engine's memory budget, keeping them
// in memory when they fit and spilling one deterministic file per index —
// named <seq>-<site>-<index>.spill — when they do not. Spill writes run
// under the engine's retry policy; a partition whose write keeps failing
// (disk full, persistent EIO) is retained in memory instead, so storage
// faults degrade capacity rather than failing the job.
func storeParts[T any](eng *Engine, site string, parts [][]T, recompute func(ctx context.Context, i int) ([]T, error)) (*partStore[T], error) {
	counts := make([]int, len(parts))
	for i, p := range parts {
		counts[i] = len(p)
	}
	st := &partStore[T]{eng: eng, site: site, counts: counts, recompute: recompute}
	if eng.spill.admit(estimatePartsBytes(parts)) {
		st.mem = parts
		return st, nil
	}
	prefix := fmt.Sprintf("%06d-%s", eng.spill.seq.Add(1), sanitizeSite(site))
	st.mem = make([][]T, len(parts))
	st.files = make([]string, len(parts))
	st.names = make([]string, len(parts))
	for i, p := range parts {
		name := fmt.Sprintf("%s-%04d.spill", prefix, i)
		path, err := spillWriteRetry(eng, site, name, i, p)
		if err != nil {
			if errors.Is(err, errSpillClosed) {
				return nil, err
			}
			// Graceful degradation: the disk refused this partition after
			// every retry, so retain it in memory (accounting it against
			// the budget) rather than failing the job.
			eng.spill.retained.Add(estimateRecords(p))
			eng.metrics.SpillFallbacksInMemory.Add(1)
			st.mem[i] = p
			continue
		}
		st.files[i] = path
		st.names[i] = name
	}
	return st, nil
}

// get returns partition i: the shared in-memory slice (callers must treat
// it as read-only, as with every engine-materialized partition) or an owned
// slice decoded from the spill file.
//
// The read path distrusts the disk. A failed or corrupt read is retried
// under the engine's retry policy; on detected corruption the partition is
// re-materialized from lineage (recompute) and the file healed, so a torn
// or rotten spill file costs a recomputation, not the job. Injected
// transient faults clear on a later attempt; a store with no lineage (a
// source) retries the read alone, which handles every transient fault and
// honestly fails on true bit rot of irreproducible input.
func (s *partStore[T]) get(ctx context.Context, i int) ([]T, error) {
	if s.files == nil || s.files[i] == "" {
		return s.mem[i], nil
	}
	eng := s.eng
	maxAttempts := eng.policy.Attempts()
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 1 {
			if d := eng.policy.Backoff(s.site+":spill-read", i, attempt-1); d > 0 {
				eng.metrics.BackoffNanos.Add(int64(d))
				if !sleepCtx(ctx, d) {
					return nil, ctx.Err()
				}
			}
		}
		recs, err := spillRead[T](eng.spill, s.files[i], s.counts[i])
		if err == nil && len(recs) != s.counts[i] {
			err = corruptf("%s: partition %d decoded %d records, store expected %d",
				s.site, i, len(recs), s.counts[i])
		}
		if err == nil {
			return recs, nil
		}
		if errors.Is(err, errSpillClosed) {
			return nil, err
		}
		corrupt := errors.Is(err, ErrSpillCorrupt)
		if corrupt {
			eng.metrics.SpillCorruptionsDetected.Add(1)
		}
		lastErr = err
		if s.recompute == nil {
			continue
		}
		recs, rerr := s.recompute(ctx, i)
		if rerr != nil {
			lastErr = fmt.Errorf("mapreduce: %s: partition %d recompute: %w", s.site, i, rerr)
			continue
		}
		if len(recs) != s.counts[i] {
			return nil, fmt.Errorf("mapreduce: %s: partition %d recompute returned %d records, store expected %d — lineage is not deterministic",
				s.site, i, len(recs), s.counts[i])
		}
		eng.metrics.SpillRecomputes.Add(1)
		s.heal(i, recs)
		return recs, nil
	}
	return nil, fmt.Errorf("mapreduce: %s: partition %d unreadable after %d attempts: %w",
		s.site, i, maxAttempts, lastErr)
}

// heal rewrites partition i's spill file from recomputed records,
// best-effort: the recovered records are already in hand, so a failed
// rewrite costs nothing now — the next read of a still-bad file just
// recovers again. The deterministic codec makes the healed file
// byte-identical to the original write.
func (s *partStore[T]) heal(i int, recs []T) {
	s.healMu.Lock()
	defer s.healMu.Unlock()
	_, _ = spillWriteRetry(s.eng, s.site, s.names[i], i, recs)
}

// count reports partition i's record count without reading it.
func (s *partStore[T]) count(i int) int { return s.counts[i] }

// spilled reports whether any of the store's partitions live on disk.
func (s *partStore[T]) spilled() bool {
	for _, f := range s.files {
		if f != "" {
			return true
		}
	}
	return false
}

// Size estimation. The budget gates which representation a materialization
// gets, not any release value, so an approximation is fine — but it must be
// a pure function of the data (never of timing or scheduling) or the spill
// decision itself would be nondeterministic for a fixed budget and input.
// estimateRecords samples up to sizeSampleRecords records, walks each with
// reflectSize, and extrapolates the mean; estimatePartsBytes sums that over
// the partitions.
const (
	sizeSampleRecords = 8
	sizeSampleElems   = 32
	sizeMaxDepth      = 4
)

func estimatePartsBytes[T any](parts [][]T) int64 {
	var total int64
	for _, p := range parts {
		total += estimateRecords(p)
	}
	return total
}

func estimateRecords[T any](recs []T) int64 {
	if len(recs) == 0 {
		return 0
	}
	stride := len(recs) / sizeSampleRecords
	if stride == 0 {
		stride = 1
	}
	var sampled, n int64
	for i := 0; i < len(recs); i += stride {
		sampled += reflectSize(reflect.ValueOf(recs[i]), sizeMaxDepth)
		n++
	}
	return sampled / n * int64(len(recs))
}

// reflectSize approximates the in-memory footprint of one value: the static
// type size plus the referenced bytes behind strings, slices, maps,
// pointers, and interfaces, sampling long containers and extrapolating.
func reflectSize(v reflect.Value, depth int) int64 {
	if !v.IsValid() {
		return 0
	}
	t := v.Type()
	size := int64(t.Size())
	if depth <= 0 {
		return size
	}
	switch v.Kind() {
	case reflect.String:
		size += int64(v.Len())
	case reflect.Slice:
		size += containerSize(v, depth)
	case reflect.Array:
		if elemHasPointers(t.Elem()) {
			size += containerSize(v, depth) - int64(t.Size())
		}
	case reflect.Map:
		n := v.Len()
		if n == 0 {
			break
		}
		sample := n
		if sample > sizeSampleElems {
			sample = sizeSampleElems
		}
		var per int64
		iter := v.MapRange()
		for i := 0; i < sample && iter.Next(); i++ {
			per += reflectSize(iter.Key(), depth-1) + reflectSize(iter.Value(), depth-1)
		}
		size += per / int64(sample) * int64(n)
	case reflect.Pointer, reflect.Interface:
		if !v.IsNil() {
			size += reflectSize(v.Elem(), depth-1)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			switch f.Kind() {
			case reflect.String, reflect.Slice, reflect.Map, reflect.Pointer, reflect.Interface, reflect.Struct, reflect.Array:
				// Static field size is already inside t.Size(); add only the
				// referenced bytes behind it.
				size += reflectSize(f, depth-1) - int64(f.Type().Size())
			}
		}
	}
	return size
}

// containerSize sums the dynamic footprint of a slice or array's elements,
// sampling long ones.
func containerSize(v reflect.Value, depth int) int64 {
	n := v.Len()
	if n == 0 {
		return 0
	}
	elem := v.Type().Elem()
	if !elemHasPointers(elem) {
		return int64(elem.Size()) * int64(n)
	}
	sample := n
	if sample > sizeSampleElems {
		sample = sizeSampleElems
	}
	var per int64
	for i := 0; i < sample; i++ {
		per += reflectSize(v.Index(i), depth-1)
	}
	return per / int64(sample) * int64(n)
}

// elemHasPointers reports whether a container element type drags referenced
// memory behind it (and so needs per-element walking).
func elemHasPointers(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return false
	default:
		return true
	}
}
