package sql

import (
	"fmt"
	"math"
	"strconv"

	"upa/internal/colbatch"
	"upa/internal/mapreduce"
)

// colexec.go is the columnar execution path: loss-free Row↔Batch converters
// at the seams, and fused MapPartitions pipelines that run whole
// Filter/Project chains (optionally topped by an Aggregate) batch-at-a-time
// with the kernels vectorize.go compiles. Shuffles, joins, sorts, limits and
// the DP bridge stay row-based; the converters guarantee the columnar
// region is observationally identical to the row path (same rows, same
// bytes, same order within each partition).

// colBatchSize is the number of rows per batch: large enough to amortize
// per-batch dispatch, small enough that a batch's columns stay cache
// resident.
const colBatchSize = 1024

// rowsToBatch decomposes rows into typed columns. Every cell must match the
// declared schema kind — the columnar seam is strict where the row path
// improvises per operator, so a mismatch aborts with a clear error rather
// than silently diverging.
func rowsToBatch(schema Schema, rows []Row) (*colbatch.Batch, error) {
	for _, r := range rows {
		if len(r) != len(schema) {
			return nil, fmt.Errorf("sql: row width %d does not match schema %v", len(r), schema.Names())
		}
	}
	cols := make([]colbatch.Col, len(schema))
	for ci, col := range schema {
		switch col.Kind {
		case KindInt:
			v := make([]int64, len(rows))
			for ri, r := range rows {
				cell, ok := r[ci].AsInt()
				if !ok {
					return nil, convertErr(col, r[ci])
				}
				v[ri] = cell
			}
			cols[ci] = colbatch.IntCol(v)
		case KindFloat:
			v := make([]float64, len(rows))
			for ri, r := range rows {
				if r[ci].Kind() != KindFloat {
					return nil, convertErr(col, r[ci])
				}
				cell, _ := r[ci].AsFloat()
				v[ri] = cell
			}
			cols[ci] = colbatch.FloatCol(v)
		case KindString:
			v := make([]string, len(rows))
			for ri, r := range rows {
				cell, ok := r[ci].AsString()
				if !ok {
					return nil, convertErr(col, r[ci])
				}
				v[ri] = cell
			}
			cols[ci] = colbatch.StrCol(v)
		case KindBool:
			v := make([]bool, len(rows))
			for ri, r := range rows {
				cell, ok := r[ci].AsBool()
				if !ok {
					return nil, convertErr(col, r[ci])
				}
				v[ri] = cell
			}
			cols[ci] = colbatch.BoolCol(v)
		default:
			return nil, fmt.Errorf("sql: column %q has unbatchable kind", col.Name)
		}
	}
	return &colbatch.Batch{Cols: cols, N: len(rows)}, nil
}

func convertErr(col Column, v Value) error {
	return fmt.Errorf("sql: column %q declared %s but holds %s", col.Name, col.Kind, v.Kind())
}

// cellValue rebuilds the sql Value of one lane — the inverse of rowsToBatch
// for a single cell.
func cellValue(c colbatch.Col, i int) Value {
	switch c.Kind {
	case colbatch.Int64:
		return Int(c.I64[i])
	case colbatch.Float64:
		return Float(c.F64[i])
	case colbatch.String:
		return Str(c.Str[i])
	default:
		return Bool(c.Bool[i])
	}
}

// appendBatchRows gathers the batch's live lanes back into rows, appending
// to dst.
func appendBatchRows(dst []Row, b *colbatch.Batch) []Row {
	b.ForSel(func(i int) {
		row := make(Row, len(b.Cols))
		for ci, c := range b.Cols {
			row[ci] = cellValue(c, i)
		}
		dst = append(dst, row)
	})
	return dst
}

// batchOp is one fused pipeline step: it mutates the batch in place (refine
// the selection, replace the columns).
type batchOp func(*colbatch.Batch)

// buildColumnarOps lowers a Filter/Project chain over a scan into a fused
// kernel program. The caller must have established eligibility via
// vectorizableChain; an ineligible node here is a programming error.
func buildColumnarOps(top Plan) (*ScanPlan, []batchOp, error) {
	var rev []Plan
	p := top
	for {
		if s, ok := p.(*ScanPlan); ok {
			ops := make([]batchOp, 0, len(rev))
			schema := Schema(s.Cols)
			for i := len(rev) - 1; i >= 0; i-- {
				switch n := rev[i].(type) {
				case *FilterPlan:
					fn, kind, ok := vectorizeExpr(n.Pred, schema)
					if !ok || kind != KindBool {
						return nil, nil, fmt.Errorf("sql: internal: filter not vectorizable")
					}
					ops = append(ops, func(b *colbatch.Batch) {
						b.Refine(fn(b).Bool)
					})
				case *ProjectPlan:
					fns := make([]vecFn, len(n.Exprs))
					next := make(Schema, len(n.Exprs))
					for j, ne := range n.Exprs {
						fn, kind, ok := vectorizeExpr(ne.Expr, schema)
						if !ok {
							return nil, nil, fmt.Errorf("sql: internal: projection not vectorizable")
						}
						fns[j] = fn
						next[j] = Column{Name: ne.Name, Kind: kind}
					}
					ops = append(ops, func(b *colbatch.Batch) {
						cols := make([]colbatch.Col, len(fns))
						for j, fn := range fns {
							cols[j] = fn(b)
						}
						b.Cols = cols
					})
					schema = next
				}
			}
			return s, ops, nil
		}
		switch n := p.(type) {
		case *FilterPlan:
			rev = append(rev, n)
			p = n.Input
		case *ProjectPlan:
			rev = append(rev, n)
			p = n.Input
		default:
			return nil, nil, fmt.Errorf("sql: internal: %T in columnar chain", p)
		}
	}
}

// compileColumnarChain runs a vectorizable Filter/Project chain as one
// fused MapPartitions: rows → batches → kernels → rows, with no
// intermediate row materialization between operators.
func (c *compiler) compileColumnarChain(top Plan) (*mapreduce.Dataset[Row], error) {
	scan, ops, err := buildColumnarOps(top)
	if err != nil {
		return nil, err
	}
	ds, err := mapreduce.FromSlice(c.eng, scan.Rows, scanParts(c.eng, scan))
	if err != nil {
		return nil, err
	}
	eng := c.eng
	schema := Schema(scan.Cols)
	return mapreduce.MapPartitions(ds, func(_ int, rows []Row) ([]Row, error) {
		out := make([]Row, 0, len(rows))
		var batches int64
		for start := 0; start < len(rows); start += colBatchSize {
			end := start + colBatchSize
			if end > len(rows) {
				end = len(rows)
			}
			b, err := rowsToBatch(schema, rows[start:end])
			if err != nil {
				return nil, err
			}
			for _, op := range ops {
				op(b)
			}
			out = appendBatchRows(out, b)
			batches++
		}
		eng.AccountBatches(batches, int64(len(rows)))
		return out, nil
	}), nil
}

// appendGroupKey appends one lane's group-key rendering, byte-identical to
// Value.String() + "\x1f" as the row path builds it.
func appendGroupKey(buf []byte, c colbatch.Col, i int) []byte {
	switch c.Kind {
	case colbatch.Int64:
		buf = strconv.AppendInt(buf, c.I64[i], 10)
	case colbatch.Float64:
		buf = strconv.AppendFloat(buf, c.F64[i], 'g', -1, 64)
	case colbatch.String:
		buf = strconv.AppendQuote(buf, c.Str[i])
	default:
		buf = strconv.AppendBool(buf, c.Bool[i])
	}
	return append(buf, 0x1f)
}

// compileColumnarAggregate fuses a vectorizable input chain with a
// batch-at-a-time partial aggregation, then feeds the per-partition partials
// through the exact same ReduceByKey(mergeGroups) + finalize as the row
// path.
//
// Byte-identical equivalence with the row path is load-bearing (the DP
// bridge's influence query and releases run through here), and rests on
// reproducing the row path's map-side combine exactly: groups fold in row
// order with the same float operations in the same sequence (Sums[i] += f;
// Mins/Maxs via math.Min/Max with the accumulator on the left), partials
// emit one per key in first-seen order, and the partition count matches the
// row path's, so the downstream shuffle merges in the same order.
func (c *compiler) compileColumnarAggregate(p *AggregatePlan) (*mapreduce.Dataset[Row], error) {
	scan, ops, err := buildColumnarOps(p.Input)
	if err != nil {
		return nil, err
	}
	in, err := p.Input.Schema()
	if err != nil {
		return nil, err
	}
	groupIdx := make([]int, len(p.GroupBy))
	for i, g := range p.GroupBy {
		idx, err := in.IndexOf(g)
		if err != nil {
			return nil, err
		}
		groupIdx[i] = idx
	}
	nAggs := len(p.Aggs)
	argFns := make([]vecFn, nAggs)
	for i, a := range p.Aggs {
		if a.Func == AggCount {
			continue
		}
		if a.Arg == nil {
			return nil, fmt.Errorf("sql: aggregate %s(%s) needs an argument", a.Func, a.Name)
		}
		fn, kind, ok := vectorizeExpr(a.Arg, in)
		if !ok || !numeric(kind) {
			return nil, fmt.Errorf("sql: internal: aggregate argument not vectorizable")
		}
		argFns[i] = fn
	}

	ds, err := mapreduce.FromSlice(c.eng, scan.Rows, scanParts(c.eng, scan))
	if err != nil {
		return nil, err
	}
	eng := c.eng
	scanSchema := Schema(scan.Cols)
	pairs := mapreduce.MapPartitions(ds, func(_ int, rows []Row) ([]mapreduce.Pair[string, groupAcc], error) {
		acc := make(map[string]*groupAcc)
		var order []string
		buf := make([]byte, 0, 64)
		argCols := make([][]float64, nAggs)
		var batches int64
		for start := 0; start < len(rows); start += colBatchSize {
			end := start + colBatchSize
			if end > len(rows) {
				end = len(rows)
			}
			b, err := rowsToBatch(scanSchema, rows[start:end])
			if err != nil {
				return nil, err
			}
			for _, op := range ops {
				op(b)
			}
			for i, fn := range argFns {
				if fn == nil {
					argCols[i] = nil
					continue
				}
				col := fn(b)
				if col.Kind == colbatch.Float64 {
					argCols[i] = col.F64
				} else {
					w := make([]float64, b.N)
					colbatch.Widen(w, col.I64)
					argCols[i] = w
				}
			}
			b.ForSel(func(ri int) {
				buf = buf[:0]
				for _, gi := range groupIdx {
					buf = appendGroupKey(buf, b.Cols[gi], ri)
				}
				st, ok := acc[string(buf)]
				if !ok {
					key := string(buf)
					keys := make(Row, len(groupIdx))
					for j, gi := range groupIdx {
						keys[j] = cellValue(b.Cols[gi], ri)
					}
					st = &groupAcc{
						Keys: keys,
						State: aggState{
							Count: 1,
							Sums:  make([]float64, nAggs),
							Mins:  make([]float64, nAggs),
							Maxs:  make([]float64, nAggs),
						},
					}
					for i, ac := range argCols {
						if ac == nil {
							continue
						}
						f := ac[ri]
						st.State.Sums[i] = f
						st.State.Mins[i] = f
						st.State.Maxs[i] = f
					}
					acc[key] = st
					order = append(order, key)
					return
				}
				st.State.Count++
				for i, ac := range argCols {
					if ac == nil {
						continue
					}
					f := ac[ri]
					st.State.Sums[i] += f
					st.State.Mins[i] = math.Min(st.State.Mins[i], f)
					st.State.Maxs[i] = math.Max(st.State.Maxs[i], f)
				}
			})
			batches++
		}
		eng.AccountBatches(batches, int64(len(rows)))
		out := make([]mapreduce.Pair[string, groupAcc], len(order))
		for i, k := range order {
			out[i] = mapreduce.Pair[string, groupAcc]{Key: k, Value: *acc[k]}
		}
		return out, nil
	})
	return finalizeAggregate(eng, pairs, p.Aggs, len(p.GroupBy) == 0)
}
