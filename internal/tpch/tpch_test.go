package tpch

import (
	"testing"

	"upa/internal/stats"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Lineitems: 0}); err == nil {
		t.Error("zero lineitems accepted")
	}
	if _, err := Generate(Config{Lineitems: 10, Skew: 1}); err == nil {
		t.Error("skew 1 accepted")
	}
	if _, err := Generate(Config{Lineitems: 10, Skew: -0.1}); err == nil {
		t.Error("negative skew accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Lineitems: 500, Skew: 0.3, Seed: 7}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Lineitems) != len(b.Lineitems) {
		t.Fatal("row counts differ across identical configs")
	}
	for i := range a.Lineitems {
		if a.Lineitems[i] != b.Lineitems[i] {
			t.Fatalf("lineitem %d differs across identical configs", i)
		}
	}
	for i := range a.Orders {
		if a.Orders[i] != b.Orders[i] {
			t.Fatalf("order %d differs across identical configs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, err := Generate(Config{Lineitems: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Lineitems: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Lineitems {
		if a.Lineitems[i] == b.Lineitems[i] {
			same++
		}
	}
	if same == len(a.Lineitems) {
		t.Fatal("different seeds generated identical lineitems")
	}
}

func TestForeignKeysInRange(t *testing.T) {
	db, err := Generate(Config{Lineitems: 2000, Skew: 0.4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range db.Lineitems {
		if l.OrderKey < 0 || l.OrderKey >= len(db.Orders) {
			t.Fatalf("lineitem orderkey %d out of range", l.OrderKey)
		}
		if l.PartKey < 0 || l.PartKey >= len(db.Parts) {
			t.Fatalf("lineitem partkey %d out of range", l.PartKey)
		}
		if l.SuppKey < 0 || l.SuppKey >= len(db.Suppliers) {
			t.Fatalf("lineitem suppkey %d out of range", l.SuppKey)
		}
	}
	for _, o := range db.Orders {
		if o.CustKey < 0 || o.CustKey >= len(db.Customers) {
			t.Fatalf("order custkey %d out of range", o.CustKey)
		}
	}
	for _, ps := range db.PartSupps {
		if ps.PartKey < 0 || ps.PartKey >= len(db.Parts) {
			t.Fatalf("partsupp partkey %d out of range", ps.PartKey)
		}
		if ps.SuppKey < 0 || ps.SuppKey >= len(db.Suppliers) {
			t.Fatalf("partsupp suppkey %d out of range", ps.SuppKey)
		}
	}
	for _, c := range db.Customers {
		if c.NationKey < 0 || c.NationKey >= len(db.Nations) {
			t.Fatalf("customer nationkey %d out of range", c.NationKey)
		}
	}
}

func TestValueDomains(t *testing.T) {
	db, err := Generate(Config{Lineitems: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range db.Lineitems {
		if l.Quantity < 1 || l.Quantity > 50 {
			t.Fatalf("quantity %v out of [1, 50]", l.Quantity)
		}
		if l.Discount < 0 || l.Discount > 0.10 {
			t.Fatalf("discount %v out of [0, 0.10]", l.Discount)
		}
		if l.ShipDate < 0 || l.ShipDate >= DateMax {
			t.Fatalf("shipdate %v out of range", l.ShipDate)
		}
		if l.ReceiptDate <= l.ShipDate {
			t.Fatalf("receipt %v not after ship %v", l.ReceiptDate, l.ShipDate)
		}
	}
}

func TestSkewConcentratesKeys(t *testing.T) {
	flat, err := Generate(Config{Lineitems: 20000, Skew: 0, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := Generate(Config{Lineitems: 20000, Skew: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	maxFreq := func(db *DB) int {
		freq := make(map[int]int)
		for _, l := range db.Lineitems {
			freq[l.PartKey]++
		}
		best := 0
		for _, c := range freq {
			if c > best {
				best = c
			}
		}
		return best
	}
	if mf, ms := maxFreq(flat), maxFreq(skewed); ms <= 2*mf {
		t.Fatalf("skew did not concentrate keys: max frequency %d (flat) vs %d (skewed)", mf, ms)
	}
}

func TestDateYear(t *testing.T) {
	if got := Date(0).Year(); got != 1992 {
		t.Errorf("Year(0) = %d, want 1992", got)
	}
	if got := Date(DaysPerYear * 3).Year(); got != 1995 {
		t.Errorf("Year(3y) = %d, want 1995", got)
	}
}

func TestRandomDomainRecords(t *testing.T) {
	db, err := Generate(Config{Lineitems: 1000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(42)
	for i := 0; i < 100; i++ {
		l := db.RandomLineitem(rng)
		if l.OrderKey < 0 || l.OrderKey >= len(db.Orders) {
			t.Fatalf("random lineitem orderkey %d out of range", l.OrderKey)
		}
		ps := db.RandomPartSupp(rng)
		if ps.PartKey < 0 || ps.PartKey >= len(db.Parts) {
			t.Fatalf("random partsupp partkey %d out of range", ps.PartKey)
		}
		o := db.RandomOrder(rng)
		if o.OrderKey < len(db.Orders) {
			t.Fatalf("random order reuses existing key %d", o.OrderKey)
		}
	}
	// Determinism of domain sampling.
	a := db.RandomLineitem(stats.NewRNG(5))
	b := db.RandomLineitem(stats.NewRNG(5))
	if a != b {
		t.Fatal("RandomLineitem not deterministic in the RNG")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Lineitems <= 0 || cfg.Skew < 0 || cfg.Skew >= 1 {
		t.Fatalf("DefaultConfig invalid: %+v", cfg)
	}
	if _, err := Generate(cfg); err != nil {
		t.Fatalf("DefaultConfig does not generate: %v", err)
	}
}
