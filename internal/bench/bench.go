// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§VI) from the synthetic workloads —
// Table II (query support), Figure 2(a) (sensitivity RMSE, UPA vs FLEX),
// Figure 2(b) (runtime overhead vs vanilla), Figure 3 (neighbouring-output
// coverage vs sample size), Figure 4(a) (overhead vs dataset size) and
// Figure 4(b) (runtime vs sample size, with cache hit rates).
//
// Absolute numbers differ from the paper's five-node, 100+ GB cluster runs;
// what the harness reproduces is the shape: who wins, by how many orders of
// magnitude, and where the crossovers fall. EXPERIMENTS.md records
// paper-vs-measured for every row.
package bench

import (
	"fmt"

	"upa/internal/core"
	"upa/internal/lifesci"
	"upa/internal/mapreduce"
	"upa/internal/queries"
	"upa/internal/tpch"
)

// Config sizes the experiments.
type Config struct {
	// Lineitems scales the TPC-H tables; LSRecords the life-science data.
	Lineitems int
	LSRecords int
	// Skew is the TPC-H join-key skew.
	Skew float64
	// Seed drives every generator and system.
	Seed uint64
	// SampleSize is UPA's n; Epsilon the per-release budget.
	SampleSize int
	Epsilon    float64
	// Trials is the number of independently generated workloads the RMSE
	// experiment averages over.
	Trials int
	// Additions is the number of sampled addition neighbours included in
	// the brute-force census (the removal side is always exhaustive).
	Additions int
}

// DefaultConfig sizes the experiments for seconds-scale laptop runs.
func DefaultConfig() Config {
	return Config{
		Lineitems:  20000,
		LSRecords:  20000,
		Skew:       0.2,
		Seed:       1,
		SampleSize: 1000,
		Epsilon:    0.1,
		Trials:     3,
		Additions:  1000,
	}
}

func (c Config) validate() error {
	if c.Lineitems < 100 {
		return fmt.Errorf("bench: Lineitems %d too small (need >= 100)", c.Lineitems)
	}
	if c.LSRecords < 100 {
		return fmt.Errorf("bench: LSRecords %d too small (need >= 100)", c.LSRecords)
	}
	if c.Trials < 1 {
		return fmt.Errorf("bench: Trials must be >= 1, got %d", c.Trials)
	}
	return nil
}

// Workload builds the trial-th workload of the configuration.
func (c Config) Workload(trial int) (*queries.Workload, error) {
	seed := c.Seed + uint64(trial)*7919
	return queries.NewWorkload(
		tpch.Config{Lineitems: c.Lineitems, Skew: c.Skew, Seed: seed},
		lifesci.Config{Records: c.LSRecords, Dims: 4, Clusters: 3, OutlierFrac: 0.01, Seed: seed},
	)
}

// newSystem builds a fresh UPA system for one release.
func (c Config) newSystem(eng *mapreduce.Engine, sampleSize int) (*core.System, error) {
	cfg := core.DefaultConfig()
	cfg.SampleSize = sampleSize
	cfg.Epsilon = c.Epsilon
	cfg.Seed = c.Seed
	return core.NewSystem(eng, cfg)
}

// QueryNames lists the nine evaluated queries in Table II order.
func QueryNames() []string {
	return []string{
		"TPCH1", "TPCH4", "TPCH13", "TPCH16", "TPCH21",
		"KMeans", "Linear Regression", "TPCH6", "TPCH11",
	}
}
