package serve

import (
	"errors"
	"reflect"
	"testing"
)

func TestLedgerChargeRefundConservation(t *testing.T) {
	l := NewLedger(nil)
	if err := l.Register("acme", 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := l.ChargeAdmission("acme", "u1", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := l.ChargeAdmission("acme", "u2", 0.25); err != nil {
		t.Fatal(err)
	}
	rep := l.Report()
	if len(rep) != 1 || rep[0].Spent != 0.5 {
		t.Fatalf("tenant spent = %+v, want 0.5", rep)
	}
	if err := l.RefundAdmission("acme", "u2", 0.25); err != nil {
		t.Fatal(err)
	}
	rep = l.Report()
	if rep[0].Spent != 0.25 {
		t.Fatalf("tenant spent after refund = %v, want 0.25", rep[0].Spent)
	}
	// Tenant spend is the sum of user spends by construction.
	var users float64
	for _, u := range rep[0].Users {
		users += u.Spent
	}
	if users != rep[0].Spent {
		t.Fatalf("user spends sum to %v, tenant says %v", users, rep[0].Spent)
	}
}

func TestLedgerBudgetRejectionLeavesStateUntouched(t *testing.T) {
	l := NewLedger(nil)
	if err := l.Register("acme", 0.5, 0.25); err != nil {
		t.Fatal(err)
	}

	// Per-user cap: second charge for the same user does not fit.
	if err := l.ChargeAdmission("acme", "u1", 0.25); err != nil {
		t.Fatal(err)
	}
	err := l.ChargeAdmission("acme", "u1", 0.25)
	if !errors.Is(err, ErrUserBudget) {
		t.Fatalf("err = %v, want ErrUserBudget", err)
	}
	if got := l.Report()[0].Spent; got != 0.25 {
		t.Fatalf("rejected charge moved the ledger: spent = %v", got)
	}

	// Tenant cap: a second user exhausts the tenant's total.
	if err := l.ChargeAdmission("acme", "u2", 0.25); err != nil {
		t.Fatal(err)
	}
	err = l.ChargeAdmission("acme", "u3", 0.25)
	if !errors.Is(err, ErrTenantBudget) {
		t.Fatalf("err = %v, want ErrTenantBudget", err)
	}
	if err := l.ChargeAdmission("nope", "u", 0.1); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("err = %v, want ErrUnknownTenant", err)
	}
}

func TestLedgerRegisterValidation(t *testing.T) {
	l := NewLedger(nil)
	if err := l.Register("", 1, 1); err == nil {
		t.Fatal("empty tenant name accepted")
	}
	if err := l.Register("x", -1, 0); err == nil {
		t.Fatal("negative budget accepted")
	}
	if err := l.ChargeAdmission("x", "u", 0); err == nil {
		t.Fatal("zero charge accepted")
	}
}

func TestLedgerCompactReplayRoundTrip(t *testing.T) {
	l := NewLedger(nil)
	if err := l.Register("acme", 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Register("beta", 0, 0); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		tenant, user string
		eps          float64
	}{{"acme", "u1", 0.25}, {"acme", "u2", 0.5}, {"beta", "v", 0.125}} {
		if err := l.ChargeAdmission(c.tenant, c.user, c.eps); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.RefundAdmission("acme", "u2", 0.5); err != nil {
		t.Fatal(err)
	}

	replayed := NewLedger(nil)
	for _, e := range l.compact() {
		replayed.replayEntry(e)
	}
	if got, want := replayed.Report(), l.Report(); !reflect.DeepEqual(got, want) {
		t.Fatalf("compact+replay diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestLedgerRemaining(t *testing.T) {
	l := NewLedger(nil)
	if err := l.Register("acme", 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := l.Register("open", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.ChargeAdmission("acme", "u", 0.25); err != nil {
		t.Fatal(err)
	}
	tr, ur := l.Remaining("acme", "u")
	if tr != 0.75 || ur != 0.25 {
		t.Fatalf("remaining = (%v, %v), want (0.75, 0.25)", tr, ur)
	}
	tr, ur = l.Remaining("open", "anyone")
	if tr != -1 || ur != -1 {
		t.Fatalf("unlimited remaining = (%v, %v), want (-1, -1)", tr, ur)
	}
}

// TestSetPersistInstallsJournalSink is the regression test for the
// lockdiscipline finding in NewService: the journal sink used to be
// installed by assigning l.persist directly, an unsynchronized publish of a
// mutex-guarded field. setPersist must install the sink under the lock and
// subsequent movements must journal through it.
func TestSetPersistInstallsJournalSink(t *testing.T) {
	l := NewLedger(nil)
	// Replay-phase movements (nil sink) journal nothing.
	l.replayEntry(entry{Kind: entryTenant, Tenant: "acme", Budget: 1})

	var journal []entry
	l.setPersist(func(e entry) error {
		journal = append(journal, e)
		return nil
	})

	if err := l.ChargeAdmission("acme", "u1", 0.25); err != nil {
		t.Fatal(err)
	}
	if len(journal) != 1 || journal[0].Kind != entryCharge || journal[0].Eps != 0.25 {
		t.Fatalf("charge after setPersist journaled %+v, want one charge of 0.25", journal)
	}
	if err := l.RefundAdmission("acme", "u1", 0.25); err != nil {
		t.Fatal(err)
	}
	if len(journal) != 2 || journal[1].Kind != entryRefund {
		t.Fatalf("refund after setPersist journaled %+v, want charge then refund", journal)
	}

	// Concurrent movements race the sink installation only if the write is
	// unlocked; under -race this pins the locked publish.
	l2 := NewLedger(nil)
	l2.replayEntry(entry{Kind: entryTenant, Tenant: "acme", Budget: 0})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = l2.ChargeAdmission("acme", "u1", 0.001)
		}
	}()
	l2.setPersist(func(entry) error { return nil })
	<-done
}
